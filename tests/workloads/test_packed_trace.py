"""Tests for the packed (struct-of-arrays) trace representation."""

from repro.cpu.instructions import (
    F_BRANCH,
    F_LOAD,
    F_STORE,
    F_TAKEN,
    F_TRANSMITTER,
    MicroOp,
    OpKind,
    WrongPathAccess,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import PackedTrace, Trace


def _varied_ops():
    return [
        MicroOp(kind=OpKind.LOAD, pc=0x1000, address=0x10_0000, dst_reg=3),
        MicroOp(kind=OpKind.STORE, pc=0x1004, address=0x10_0040,
                src_regs=(3,)),
        MicroOp(kind=OpKind.BRANCH, pc=0x1008, taken=True, target=0x2000,
                force_mispredict=True,
                wrong_path=[WrongPathAccess(address=0x20_0000),
                            WrongPathAccess(address=0x20_0040, is_store=True),
                            WrongPathAccess(address=0x3000,
                                            is_instruction=True)]),
        MicroOp(kind=OpKind.INT_ALU, pc=0x100C, src_regs=(3, 7), dst_reg=8),
        MicroOp(kind=OpKind.FP_ALU, pc=0x1010, dst_reg=9,
                execution_latency=5),
        MicroOp(kind=OpKind.SYSCALL, pc=0x1014, is_context_switch=True),
        MicroOp(kind=OpKind.NOP, pc=0x1018, is_sandbox_entry=True),
        MicroOp(kind=OpKind.BRANCH, pc=0x101C, taken=False, target=0x1000,
                force_mispredict=False),
        MicroOp(kind=OpKind.MUL_DIV, pc=0x1020, dst_reg=10, sequence=42),
    ]


class TestPackUnpackRoundTrip:
    def test_lossless_round_trip(self):
        ops = _varied_ops()
        packed = PackedTrace.pack(ops)
        assert len(packed) == len(ops)
        assert packed.unpack() == ops

    def test_single_op_materialisation(self):
        ops = _varied_ops()
        packed = PackedTrace.pack(ops)
        for index, op in enumerate(ops):
            assert packed.op(index) == op

    def test_generated_trace_round_trips(self):
        trace = TraceGenerator(get_profile("mcf"), seed=3).generate_single(400)
        assert trace.packed().unpack() == trace.ops


class TestPackedFlags:
    def test_kind_flags_precomputed(self):
        packed = PackedTrace.pack(_varied_ops())
        assert packed.flags[0] & F_LOAD
        assert packed.flags[0] & F_TRANSMITTER
        assert packed.flags[1] & F_STORE
        assert packed.flags[1] & F_TRANSMITTER
        assert packed.flags[2] & F_BRANCH
        assert packed.flags[2] & F_TAKEN
        assert not packed.flags[3] & (F_LOAD | F_STORE | F_BRANCH)

    def test_flags_match_enum_properties(self):
        trace = TraceGenerator(get_profile("gcc"), seed=5).generate_single(300)
        packed = trace.packed()
        for index, op in enumerate(trace.ops):
            flags = packed.flags[index]
            assert bool(flags & F_LOAD) == op.is_load
            assert bool(flags & F_STORE) == op.is_store
            assert bool(flags & F_BRANCH) == op.is_branch
            assert bool(flags & F_TRANSMITTER) == op.kind.is_transmitter


class TestTracePackedCache:
    def test_packed_view_is_cached(self):
        trace = Trace(benchmark="demo", thread_id=0, process_id=0,
                      ops=_varied_ops())
        assert trace.packed() is trace.packed()

    def test_cache_invalidated_on_length_change(self):
        trace = Trace(benchmark="demo", thread_id=0, process_id=0,
                      ops=_varied_ops())
        first = trace.packed()
        trace.ops.append(MicroOp(kind=OpKind.NOP, pc=0x2000))
        second = trace.packed()
        assert second is not first
        assert len(second) == len(trace.ops)

    def test_explicit_invalidation(self):
        trace = Trace(benchmark="demo", thread_id=0, process_id=0,
                      ops=_varied_ops())
        first = trace.packed()
        trace.invalidate_packed()
        assert trace.packed() is not first

    def test_generator_emits_packed_traces(self):
        workload = TraceGenerator(get_profile("mcf"), seed=1).generate(200)
        for trace in workload:
            assert trace._packed is not None
            assert trace._packed.length == len(trace.ops)
