"""Tests for multi-programmed co-run mix composition."""

import pytest

from repro.harness.suites import resolve_suites
from repro.workloads.cache import reset_trace_cache
from repro.workloads.generator import generate_workload
from repro.workloads.mixes import (
    MIX_PROFILES,
    MixProfile,
    generate_mix,
    get_mix,
    mix_names,
)
from repro.workloads.profiles import get_profile


class TestMixProfiles:
    def test_builtin_mixes_are_well_formed(self):
        for name, mix in MIX_PROFILES.items():
            assert mix.name == name
            assert mix.suite == "mix"
            assert len(mix.members) >= 2
            assert mix.num_threads >= len(mix.members)

    def test_get_profile_resolves_mix_names(self):
        mix = get_profile("mix-pointer-stream")
        assert isinstance(mix, MixProfile)
        assert mix.members == ("mcf", "lbm")
        assert get_mix("mix-quad").num_threads == 4

    def test_unknown_constituent_rejected(self):
        with pytest.raises(ValueError):
            MixProfile(name="bad", members=("mcf", "not-a-benchmark"))

    def test_single_member_rejected(self):
        with pytest.raises(ValueError):
            MixProfile(name="solo", members=("mcf",))

    def test_suite_registry_exposes_mixes(self):
        assert resolve_suites(["mixes"]) == sorted(mix_names())
        assert resolve_suites(["mix-quad"]) == ["mix-quad"]


class TestMixGeneration:
    def test_constituents_get_distinct_processes_and_threads(self):
        workload = generate_mix(get_mix("mix-quad"), 300, seed=5)
        assert workload.benchmark == "mix-quad"
        assert workload.suite == "mix"
        assert [trace.benchmark for trace in workload] == [
            "mcf", "lbm", "omnetpp", "libquantum"]
        assert [trace.process_id for trace in workload] == [0, 1, 2, 3]
        assert [trace.thread_id for trace in workload] == [0, 1, 2, 3]
        for trace in workload:
            assert len(trace) == 300

    def test_constituent_traces_reuse_the_trace_cache(self):
        """Mix composition must not regenerate (or repack) member traces."""
        reset_trace_cache()
        try:
            single = generate_workload(get_profile("mcf"), 250, seed=9)
            mix = generate_workload(get_mix("mix-pointer-stream"), 250,
                                    seed=9)
            # The mix's mcf trace shares the cached ops list and the cached
            # PackedTrace object by reference — zero copying.
            assert mix.traces[0].ops is single.traces[0].ops
            assert mix.traces[0]._packed is single.traces[0]._packed
        finally:
            reset_trace_cache()

    def test_generate_workload_dispatches_mixes(self):
        via_dispatch = generate_workload(get_profile("mix-pointer-stream"),
                                         200, seed=3)
        direct = generate_mix(get_mix("mix-pointer-stream"), 200, seed=3)
        assert [t.benchmark for t in via_dispatch] == [t.benchmark
                                                       for t in direct]
        assert [t.process_id for t in via_dispatch] == [t.process_id
                                                        for t in direct]
        assert all(a.ops == b.ops
                   for a, b in zip(via_dispatch.traces, direct.traces))

    def test_parsec_constituent_contributes_all_threads(self):
        mix = MixProfile(name="test-parsec-mix",
                         members=("streamcluster", "mcf"))
        assert mix.num_threads == 5
        workload = generate_mix(mix, 200, seed=1)
        assert [trace.process_id for trace in workload] == [0, 0, 0, 0, 1]
        assert workload.num_threads == 5
