"""Tests for the trace containers."""

from repro.cpu.instructions import MicroOp, OpKind
from repro.workloads.trace import Trace, WorkloadTraces


def make_trace(thread_id=0, n=10):
    ops = [MicroOp(kind=OpKind.INT_ALU, pc=0x1000 + 4 * i, dst_reg=1)
           for i in range(n)]
    return Trace(benchmark="demo", thread_id=thread_id, process_id=0, ops=ops)


class TestTrace:
    def test_length_and_iteration(self):
        trace = make_trace(n=5)
        assert len(trace) == 5
        assert sum(1 for _ in trace) == 5

    def test_summary_matches_contents(self):
        trace = make_trace(n=8)
        summary = trace.summary()
        assert summary["total"] == 8
        assert summary["loads"] == 0
        assert summary["int_alu"] == 8


class TestWorkloadTraces:
    def test_bundle_accounting(self):
        workload = WorkloadTraces(benchmark="demo", suite="parsec",
                                  traces=[make_trace(0, 4), make_trace(1, 6)])
        assert workload.num_threads == 2
        assert workload.total_instructions() == 10
        assert workload.thread(1).thread_id == 1
        assert [trace.thread_id for trace in workload] == [0, 1]
