"""Tests for the fork-inherited shared trace registry.

The registry is the campaign harness's pre-fork trace tier: the parent
materialises every distinct workload (packed columns and execution plans
included) before the worker pool forks, workers attach by key, and the
parent empties the registry once the pool is gone.  These tests pin the
registry primitives, the ``generate_workload`` lookup order, the
attach-not-regenerate guarantee (a poisoned generator proves workers never
generate), and the campaign-level lifecycle.
"""

import pytest

from repro.common.params import ProtectionMode, SystemConfig
from repro.harness.campaign import Campaign
from repro.sim.runner import unprotected_config
from repro.workloads import generator as generator_module
from repro.workloads.cache import (
    SHARED_TRACES_ENV,
    TRACE_CACHE_ENV,
    clear_shared_traces,
    materialize_shared_traces,
    reset_trace_cache,
    shared_trace_count,
    shared_trace_lookup,
    shared_traces_enabled,
    trace_key,
)
from repro.workloads.generator import TraceGenerator, generate_workload
from repro.workloads.mixes import get_mix
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 600


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    monkeypatch.delenv(SHARED_TRACES_ENV, raising=False)
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    reset_trace_cache()
    clear_shared_traces()
    yield
    reset_trace_cache()
    clear_shared_traces()


class TestRegistryPrimitives:
    def test_enabled_by_default_and_disableable(self, monkeypatch):
        assert shared_traces_enabled()
        for value in ("off", "none", "0", "disabled", "false", "OFF"):
            monkeypatch.setenv(SHARED_TRACES_ENV, value)
            assert not shared_traces_enabled()
        monkeypatch.setenv(SHARED_TRACES_ENV, "1")
        assert shared_traces_enabled()

    def test_materialise_registers_each_distinct_workload_once(self):
        mcf = get_profile("mcf")
        lbm = get_profile("lbm")
        requests = [(mcf, INSTRUCTIONS, 7), (lbm, INSTRUCTIONS, 7),
                    (mcf, INSTRUCTIONS, 7)]          # duplicate: one entry
        assert materialize_shared_traces(requests) == 2
        assert shared_trace_count() == 2
        # Idempotent: a second pass registers nothing new.
        assert materialize_shared_traces(requests) == 0

    def test_materialised_workloads_carry_packed_and_plan(self):
        mcf = get_profile("mcf")
        materialize_shared_traces([(mcf, INSTRUCTIONS, 7)])
        workload = shared_trace_lookup(mcf, INSTRUCTIONS, 7, 0)
        assert workload is not None
        for trace in workload:
            packed = trace._packed          # already built, not rebuilt
            assert packed is not None
            assert packed._plans            # plan pre-built for workers

    def test_mixes_expand_to_their_constituents(self):
        mix = get_mix("mix-pointer-stream")
        registered = materialize_shared_traces([(mix, INSTRUCTIONS, 7)])
        assert registered == len(mix.members)
        for process_id in range(len(mix.members)):
            member = mix.member_profile(process_id)
            assert shared_trace_lookup(member, INSTRUCTIONS, 7, 0) \
                is not None

    def test_clear_empties_the_registry(self):
        materialize_shared_traces([(get_profile("mcf"), INSTRUCTIONS, 7)])
        assert clear_shared_traces() == 1
        assert shared_trace_count() == 0
        assert shared_trace_lookup(get_profile("mcf"), INSTRUCTIONS, 7,
                                   0) is None


class TestGenerateWorkloadAttachesFirst:
    def test_lookup_precedes_every_other_tier(self, monkeypatch):
        mcf = get_profile("mcf")
        materialize_shared_traces([(mcf, INSTRUCTIONS, 7)])
        shared = shared_trace_lookup(mcf, INSTRUCTIONS, 7, 0)

        def poisoned(self, *args, **kwargs):
            raise AssertionError("regenerated a shared trace")
        monkeypatch.setattr(TraceGenerator, "generate", poisoned)
        # Even with the LRU/disk tiers disabled outright, the shared
        # registry satisfies the request — by reference, not by copy.
        monkeypatch.setenv(TRACE_CACHE_ENV, "off")
        assert generate_workload(mcf, INSTRUCTIONS, seed=7) is shared

    def test_non_registered_requests_fall_through(self):
        mcf = get_profile("mcf")
        materialize_shared_traces([(mcf, INSTRUCTIONS, 7)])
        other = generate_workload(mcf, INSTRUCTIONS, seed=8)
        assert other is not shared_trace_lookup(mcf, INSTRUCTIONS, 7, 0)
        key = trace_key(mcf, INSTRUCTIONS, 8, 0)
        assert key  # a different seed takes the ordinary cache path


def _campaign(jobs, **kwargs):
    return Campaign(
        ["hmmer", "povray"],
        configs={"MuonTrap": SystemConfig(mode=ProtectionMode.MUONTRAP)},
        baseline_config=unprotected_config(),
        instructions=INSTRUCTIONS, jobs=jobs, **kwargs)


def _poison_after_materialise(monkeypatch):
    """Arrange for the generator to explode *after* pre-fork materialise.

    Forked workers inherit the poisoned generator together with the
    registry, so the campaign only completes if every worker attached to
    the shared traces instead of regenerating its own.
    """
    import repro.harness.campaign as campaign_module

    def materialise_then_poison(requests):
        registered = materialize_shared_traces(requests)

        def poisoned(self, *args, **kwargs):
            raise AssertionError("worker regenerated a shared trace")
        monkeypatch.setattr(TraceGenerator, "generate", poisoned)
        return registered

    monkeypatch.setattr(campaign_module, "materialize_shared_traces",
                        materialise_then_poison)


class TestCampaignLifecycle:
    def test_parallel_campaign_attaches_not_regenerates(self, monkeypatch):
        reference = _campaign(jobs=1).run()
        monkeypatch.setenv(TRACE_CACHE_ENV, "off")
        _poison_after_materialise(monkeypatch)
        shared = _campaign(jobs=2).run()
        assert shared.stats.shared_traces == 2
        assert not shared.failures
        assert shared.geomeans() == reference.geomeans()
        assert {key: result.cycles for key, result in shared.runs.items()} \
            == {key: result.cycles for key, result in reference.runs.items()}
        # The pool is gone; the parent dropped its references.
        assert shared_trace_count() == 0

    def test_serial_campaigns_do_not_materialise(self):
        result = _campaign(jobs=1).run()
        assert result.stats.shared_traces == 0
        assert shared_trace_count() == 0

    def test_env_var_disables_sharing(self, monkeypatch):
        monkeypatch.setenv(SHARED_TRACES_ENV, "off")
        result = _campaign(jobs=2).run()
        assert result.stats.shared_traces == 0
        assert not result.failures
        assert shared_trace_count() == 0

    def test_summary_line_reports_shared_traces(self, monkeypatch):
        result = _campaign(jobs=2).run()
        assert result.stats.shared_traces == 2
        assert "2 trace(s) shared with workers" in result.stats.summary()
