"""Tests for the workload profiles and the synthetic trace generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.instructions import OpKind
from repro.workloads.generator import TraceGenerator, generate_workload
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    WorkloadProfile,
    get_profile,
    parsec_benchmarks,
    spec_benchmarks,
)


class TestProfiles:
    def test_all_figure_benchmarks_present(self):
        # The 26 SPEC workloads of Figures 3/7/9 and 7 Parsec of Figures 4-8.
        assert len(spec_benchmarks()) == 26
        assert len(parsec_benchmarks()) == 7
        for name in ["lbm", "mcf", "omnetpp", "povray", "zeusmp", "sphinx3"]:
            assert name in SPEC2006_PROFILES
        for name in ["blackscholes", "streamcluster", "freqmine"]:
            assert name in PARSEC_PROFILES

    def test_parsec_profiles_are_four_threaded(self):
        assert all(profile.num_threads == 4
                   for profile in PARSEC_PROFILES.values())
        assert all(profile.num_threads == 1
                   for profile in SPEC2006_PROFILES.values())

    def test_get_profile_raises_for_unknown(self):
        with pytest.raises(KeyError):
            get_profile("not-a-benchmark")

    def test_scaling_preserves_identity(self):
        profile = get_profile("mcf").scaled_for_sample(2000)
        assert profile.name == "mcf"
        assert profile.working_set_bytes < get_profile("mcf").working_set_bytes
        assert profile.working_set_bytes >= 8 * 1024

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="bad", temporal_locality=1.5)


class TestGenerator:
    def test_trace_length_and_mix(self):
        profile = get_profile("hmmer")
        trace = TraceGenerator(profile, seed=1).generate_single(4000)
        assert len(trace) == 4000
        summary = trace.summary()
        assert abs(summary["load_fraction"] - profile.load_fraction) < 0.05
        assert abs(summary["store_fraction"] - profile.store_fraction) < 0.04
        assert abs(summary["branch_fraction"] - profile.branch_fraction) < 0.04

    def test_deterministic_for_same_seed(self):
        profile = get_profile("gcc")
        first = TraceGenerator(profile, seed=7).generate_single(500)
        second = TraceGenerator(profile, seed=7).generate_single(500)
        assert [(op.kind, op.pc, op.address) for op in first.ops] == \
            [(op.kind, op.pc, op.address) for op in second.ops]

    def test_different_seeds_differ(self):
        profile = get_profile("gcc")
        first = TraceGenerator(profile, seed=1).generate_single(500)
        second = TraceGenerator(profile, seed=2).generate_single(500)
        assert [(op.kind, op.address) for op in first.ops] != \
            [(op.kind, op.address) for op in second.ops]

    def test_multithreaded_workload_has_one_trace_per_thread(self):
        workload = generate_workload(get_profile("ferret"), 1000, seed=3)
        assert workload.num_threads == 4
        assert workload.total_instructions() == 4000
        bases = {op.address & ~0xFF_FFFF for trace in workload
                 for op in trace.ops
                 if op.kind is OpKind.LOAD and op.address < 0x7000_0000}
        assert len(bases) >= 2, "threads must use distinct private regions"

    def test_pcs_stay_within_instruction_footprint(self):
        profile = get_profile("povray").scaled_for_sample(2000)
        trace = TraceGenerator(get_profile("povray"), seed=5).generate_single(
            2000)
        code_base = 0x0040_0000
        for op in trace.ops:
            assert code_base <= op.pc < code_base + \
                profile.instruction_footprint_bytes + 4

    def test_branches_carry_wrong_path_accesses(self):
        trace = TraceGenerator(get_profile("gobmk"), seed=9).generate_single(
            3000)
        branches = [op for op in trace.ops if op.kind is OpKind.BRANCH]
        assert branches
        assert any(op.wrong_path for op in branches)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       length=st.integers(min_value=50, max_value=1500))
def test_generator_properties(seed, length):
    """Property: every generated op is well formed."""
    profile = get_profile("astar")
    trace = TraceGenerator(profile, seed=seed).generate_single(length)
    assert len(trace) == length
    for op in trace.ops:
        if op.kind.is_memory:
            assert op.address is not None and op.address >= 0
        if op.kind is OpKind.BRANCH:
            assert op.target is not None
        assert op.execution_latency >= 0
