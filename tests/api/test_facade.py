"""The repro.api facade: resolution, simulate/compare/sweep, typed outcomes."""

import pytest

from repro import api
from repro.common.params import (
    FilterCacheConfig,
    ProtectionMode,
    SystemConfig,
)
from repro.sim.runner import ExperimentRunner, unprotected_config
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.mixes import get_machine
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 800
SEED = 11


class TestResolveMachine:
    def test_none_is_the_table1_machine(self):
        assert api.resolve_machine(None) == SystemConfig()

    def test_system_config_passes_through(self):
        config = SystemConfig(num_cores=2)
        assert api.resolve_machine(config) is config

    def test_scheme_name(self):
        assert api.resolve_machine("stt-future") \
            == SystemConfig(mode=ProtectionMode.STT_FUTURE)

    def test_preset_name(self):
        assert api.resolve_machine("biglittle-asym") \
            == get_machine("biglittle-asym")

    def test_description_dict(self):
        assert api.resolve_machine({"num_cores": 2}) \
            == SystemConfig(num_cores=2)

    def test_machine_file_path(self, tmp_path):
        from repro.common.machine import save_machine
        path = save_machine(get_machine("asym-protect"),
                            tmp_path / "m.json")
        assert api.resolve_machine(str(path)) == get_machine("asym-protect")
        assert api.resolve_machine(path) == get_machine("asym-protect")

    def test_unknown_string_lists_the_options(self):
        with pytest.raises(ValueError, match="machine preset"):
            api.resolve_machine("definitely-not-a-machine")

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            api.resolve_machine(42)


class TestResolveWorkload:
    def test_benchmark_and_mix_names(self):
        assert api.resolve_workload("mcf").name == "mcf"
        assert api.resolve_workload("mix-quad").name == "mix-quad"

    def test_profile_objects_pass_through(self):
        profile = get_profile("mcf")
        assert api.resolve_workload(profile) is profile

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            api.resolve_workload("not-a-benchmark")

    def test_non_profile_object(self):
        with pytest.raises(TypeError, match="profile"):
            api.resolve_workload(3.14)


class TestSimulate:
    def test_bit_identical_to_the_manual_construction_path(self):
        outcome = api.simulate("mcf", "muontrap", seed=SEED,
                               instructions=INSTRUCTIONS,
                               warmup_fraction=0.25, collect_stats=True)
        profile = get_profile("mcf")
        workload = generate_workload(profile, INSTRUCTIONS, seed=SEED)
        system = build_system(SystemConfig(mode=ProtectionMode.MUONTRAP),
                              seed=SEED)
        manual = Simulator(system).run(workload, collect_stats=True,
                                       warmup_fraction=0.25)
        assert outcome.cycles == manual.cycles
        assert outcome.instructions == manual.instructions
        assert outcome.result.stats == manual.stats

    def test_outcome_fields(self):
        outcome = api.simulate("mcf", seed=SEED, instructions=INSTRUCTIONS)
        assert outcome.benchmark == "mcf"
        assert outcome.machine == SystemConfig()
        assert outcome.seed == SEED
        assert outcome.instructions_requested == INSTRUCTIONS
        assert outcome.ipc == pytest.approx(
            outcome.instructions / outcome.cycles)
        assert outcome.time == pytest.approx(float(outcome.cycles))
        assert outcome.wall_seconds == pytest.approx(
            outcome.cycles / 2.0e9)

    def test_scheme_override_and_labels(self):
        outcome = api.simulate("mcf", scheme="stt-spectre", seed=SEED,
                               instructions=INSTRUCTIONS)
        assert outcome.label == "STT-Spectre"
        assert outcome.scheme == "stt-spectre"
        preset = api.simulate("mix-pointer-stream", "biglittle-asym",
                              seed=SEED, instructions=INSTRUCTIONS)
        assert preset.label == "biglittle-asym"

    def test_normalised_to(self):
        baseline = api.simulate("mcf", "unprotected", seed=SEED,
                                instructions=INSTRUCTIONS)
        protected = api.simulate("mcf", "muontrap", seed=SEED,
                                 instructions=INSTRUCTIONS)
        assert protected.normalised_to(baseline) == pytest.approx(
            protected.cycles / baseline.cycles)

    def test_machine_widened_to_the_workload(self):
        outcome = api.simulate("mix-quad", seed=SEED,
                               instructions=INSTRUCTIONS)
        assert len(outcome.result.core_benchmarks) == 4

    def test_store_and_cache_reuse(self, tmp_path):
        from repro.harness.store import ResultStore
        store = ResultStore(tmp_path)
        first = api.simulate("mcf", seed=SEED, instructions=INSTRUCTIONS,
                             store=store)
        assert len(store) == 1
        hits = store.hits
        again = api.simulate("mcf", seed=SEED, instructions=INSTRUCTIONS,
                             store=store)
        assert store.hits == hits + 1
        assert again.cycles == first.cycles


class TestCompare:
    def test_matches_experiment_runner(self):
        comparison = api.compare(["muontrap", "stt-spectre"], suite="mcf",
                                 seed=1234, instructions=INSTRUCTIONS)
        runner = ExperimentRunner(instructions=INSTRUCTIONS, seed=1234)
        series = runner.normalised_series(
            ["mcf"],
            {"MuonTrap": SystemConfig(mode=ProtectionMode.MUONTRAP),
             "STT-Spectre": SystemConfig(mode=ProtectionMode.STT_SPECTRE)},
            unprotected_config())
        normalised = comparison.normalised()
        assert normalised["MuonTrap"]["mcf"] \
            == series["MuonTrap"].values["mcf"]
        assert normalised["STT-Spectre"]["mcf"] \
            == series["STT-Spectre"].values["mcf"]

    def test_accepts_mixed_series_and_mappings(self):
        comparison = api.compare(
            {"protected": "muontrap", "machine": "asym-protect"},
            suite="mcf", instructions=INSTRUCTIONS)
        assert sorted(comparison.labels) == ["machine", "protected"]

    def test_outcome_accessor_covers_the_baseline(self):
        comparison = api.compare(["muontrap"], suite="mcf",
                                 instructions=INSTRUCTIONS)
        cell = comparison.outcome("mcf", "MuonTrap")
        base = comparison.outcome("mcf", "baseline")
        assert cell.benchmark == "mcf"
        assert base.machine.mode is ProtectionMode.UNPROTECTED
        assert comparison.baseline_label == "baseline"

    def test_render_formats(self):
        comparison = api.compare(["muontrap"], suite="mcf",
                                 instructions=INSTRUCTIONS)
        assert "geomean" in comparison.render()
        assert comparison.render("csv").startswith("benchmark")

    def test_needs_at_least_one_series(self):
        with pytest.raises(ValueError, match="at least one"):
            api.compare([], suite="mcf")

    def test_colliding_series_labels_are_rejected(self):
        # Two distinct machines deriving the same label must not silently
        # collapse into one series.
        with pytest.raises(ValueError, match="same series label"):
            api.compare([SystemConfig(),
                         SystemConfig(num_cores=2)], suite="mcf")

    def test_custom_baseline_label_cannot_shadow_a_series(self):
        with pytest.raises(ValueError, match="shadows"):
            api.build_comparison({"MuonTrap": "muontrap"}, "mcf",
                                 baseline_label="MuonTrap")


class TestSweep:
    def test_filter_size_sweep(self):
        sweep = api.sweep("data_filter.size_bytes", [1024, 2048],
                          suite="mcf", scheme="muontrap",
                          instructions=INSTRUCTIONS)
        assert sweep.parameter == "data_filter.size_bytes"
        assert sweep.values == [1024, 2048]
        geomeans = sweep.geomeans()
        assert set(geomeans) == {"1024", "2048"}
        assert sweep.best_value() in (1024, 2048)
        # The swept field really is applied.
        config = sweep.comparison.campaign.configs["1024"]
        assert config.data_filter.size_bytes == 1024
        assert config.mode is ProtectionMode.MUONTRAP

    def test_swept_value_matches_manual_config(self):
        sweep = api.sweep("data_filter.size_bytes", [1024], suite="mcf",
                          scheme="muontrap", instructions=INSTRUCTIONS)
        manual = api.simulate(
            "mcf",
            SystemConfig(mode=ProtectionMode.MUONTRAP,
                         data_filter=FilterCacheConfig(size_bytes=1024)),
            seed=1234, instructions=INSTRUCTIONS)
        assert sweep.comparison.outcome("mcf", "1024").cycles \
            == manual.cycles

    def test_unknown_parameter_path(self):
        with pytest.raises(ValueError, match="no field"):
            api.sweep("data_filter.nope", [1], suite="mcf")

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            api.sweep("l2.associativity", [8, 8], suite="mcf")

    def test_sweep_reaches_explicit_per_core_lists(self):
        # Every machine preset carries an explicit cores list; a swept
        # CoreConfig-level field must land in those entries (which drive
        # construction), not only in the stale machine-level field.
        sweep = api.sweep("data_filter.size_bytes", [512, 4096],
                          suite="mcf", machine="asym-protect",
                          instructions=INSTRUCTIONS)
        for value in (512, 4096):
            config = sweep.comparison.campaign.configs[str(value)]
            assert config.data_filter.size_bytes == value
            assert all(core.data_filter.size_bytes == value
                       for core in config.cores)
        geomeans = sweep.geomeans()
        assert geomeans["512"] != geomeans["4096"]

    def test_sweep_of_the_machine_level_pipeline_reaches_cores(self):
        sweep_config = api._replace_path(
            api.resolve_machine("asym-protect"), "core.width", 4)
        assert sweep_config.core.width == 4
        assert all(core.pipeline.width == 4
                   for core in sweep_config.cores)

    def test_sweep_baseline_uses_the_swept_base_machine(self):
        sweep = api.sweep("l2.associativity", [8], suite="mcf",
                          machine="asym-protect",
                          instructions=INSTRUCTIONS)
        baseline = sweep.comparison.campaign.baseline_config
        # Same 2-core preset machine, under the baseline scheme — not the
        # 1-core Table 1 default.
        assert baseline.num_cores == 2
        assert set(baseline.core_schemes) == {"unprotected"}
