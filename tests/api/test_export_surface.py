"""Export-surface guard: ``__all__`` ≡ the documented public API.

Three invariants, per module (`repro.api`, `repro.schemes`):

* ``__all__`` matches the expected symbol list exactly — adding an export
  is a conscious act that must update this file (and the README);
* every exported name actually exists on the module;
* every exported name is mentioned in the README's Public API docs.
"""

from pathlib import Path

import pytest

import repro
import repro.api
import repro.schemes

README = (Path(__file__).resolve().parents[2] / "README.md").read_text()

API_EXPORTS = [
    "ComparisonOutcome",
    "DEFAULT_BASELINE",
    "MachineLike",
    "SimulationOutcome",
    "SweepOutcome",
    "WorkloadLike",
    "build_comparison",
    "compare",
    "machine_label",
    "resolve_machine",
    "resolve_workload",
    "simulate",
    "sweep",
]

SCHEMES_EXPORTS = [
    "SchemeSpec",
    "UnknownSchemeError",
    "available_schemes",
    "figure_series_schemes",
    "get_scheme",
    "is_registered",
    "register_scheme",
    "scheme_config",
    "scheme_display_labels",
    "scheme_name",
    "scheme_names",
    "unregister_scheme",
]


@pytest.mark.parametrize("module,expected", [
    (repro.api, API_EXPORTS),
    (repro.schemes, SCHEMES_EXPORTS),
], ids=["repro.api", "repro.schemes"])
class TestExportSurface:
    def test_all_matches_documented_surface(self, module, expected):
        assert sorted(module.__all__) == sorted(expected), (
            f"{module.__name__}.__all__ drifted from the documented "
            f"surface; update tests/api/test_export_surface.py and the "
            f"README 'Public API' section together")

    def test_every_export_exists(self, module, expected):
        for name in expected:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ exports {name!r} but the "
                f"module does not define it")

    def test_every_export_is_documented_in_the_readme(self, module,
                                                      expected):
        undocumented = [name for name in expected if name not in README]
        assert not undocumented, (
            f"{module.__name__} exports {undocumented} but the README "
            f"'Public API' section never mentions them")


class TestPackageSurface:
    def test_package_exposes_api_and_schemes_lazily(self):
        assert "api" in repro.__all__ and "schemes" in repro.__all__
        assert repro.api.simulate is repro.__getattr__("api").simulate

    def test_unknown_package_attribute(self):
        with pytest.raises(AttributeError):
            repro.no_such_attribute
