"""Machine descriptions: lossless round-trips, schema errors, presets.

Seed-pinned property tests drive randomized ``SystemConfig``s — per-core
lists, heterogeneous scheme mixes, private L2s, custom scheme names —
through ``to_dict``/JSON/``from_dict`` and require bit-identical equality;
plus the unknown-key / version-mismatch error contract and the data-driven
machine presets.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.common.machine import (
    MACHINE_SCHEMA_VERSION,
    MachineFormatError,
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from repro.common.params import (
    CacheConfig,
    CoreConfig,
    FilterCacheConfig,
    PipelineConfig,
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
    biglittle_system_config,
    corun_system_config,
    heterogeneous_corun_config,
)
from repro.workloads.mixes import MACHINE_PRESETS, get_machine, machine_names

SCHEMES = [mode.value for mode in ProtectionMode] + ["custom-scheme-x"]


def random_cache(rng, name):
    line = rng.choice([32, 64])
    lines = rng.choice([8, 16, 64, 256])
    assoc = rng.choice([way for way in (1, 2, 4, 8) if way <= lines])
    return CacheConfig(name=name, size_bytes=line * lines,
                       associativity=assoc, line_size=line,
                       hit_latency=rng.randint(1, 4),
                       mshrs=rng.randint(1, 8),
                       prefetcher=rng.choice([None, "stride", "next_line"]))


def random_core(rng, line_size):
    l1i = random_cache(rng, "l1i")
    l1i = replace(l1i, line_size=line_size,
                  size_bytes=line_size * l1i.num_lines)
    l1d = random_cache(rng, "l1d")
    l1d = replace(l1d, line_size=line_size,
                  size_bytes=line_size * l1d.num_lines)
    private_l2 = None
    if rng.random() < 0.5:
        private_l2 = random_cache(rng, "l2p")
        private_l2 = replace(private_l2, line_size=line_size,
                             size_bytes=line_size * private_l2.num_lines)
    return CoreConfig(
        mode=rng.choice(SCHEMES),
        pipeline=PipelineConfig(
            width=rng.choice([2, 4, 8]),
            rob_entries=rng.choice([64, 192]),
            frequency_ghz=rng.choice([1.2, 2.0, 3.5])),
        l1i=l1i, l1d=l1d, private_l2=private_l2,
        data_filter=FilterCacheConfig(
            size_bytes=rng.choice([1024, 2048]),
            associativity=rng.choice([2, 4])),
        protection=random_protection(rng))


def random_protection(rng):
    fields = {name: rng.random() < 0.5 for name in (
        "data_filter_cache", "instruction_filter_cache", "filter_tlb",
        "coherence_protection", "commit_time_prefetch",
        "clear_on_misspeculate", "clear_on_context_switch",
        "parallel_l1_access", "insecure_scoped_invalidate")}
    return ProtectionConfig(**fields)


def random_system(rng):
    line_size = rng.choice([32, 64])
    l2 = random_cache(rng, "l2")
    l2 = replace(l2, line_size=line_size,
                 size_bytes=line_size * l2.num_lines)
    num_cores = rng.randint(1, 4)
    config = SystemConfig(
        mode=rng.choice(SCHEMES),
        num_cores=num_cores,
        l2=l2,
        l1i=replace(random_cache(rng, "l1i"), line_size=line_size),
        l1d=replace(random_cache(rng, "l1d"), line_size=line_size),
        protection=random_protection(rng))
    if rng.random() < 0.5:
        cores = []
        for _ in range(num_cores):
            core = random_core(rng, line_size)
            cores.append(core)
        config = config.with_core_configs(cores)
    return config


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(40))
    def test_randomised_system_configs_round_trip_bit_identically(self, seed):
        rng = random.Random(0xC0FFEE + seed)
        config = random_system(rng)
        payload = machine_to_dict(config)
        recovered = machine_from_dict(json.loads(json.dumps(payload)))
        assert recovered == config
        # A second trip is a fixed point.
        assert machine_to_dict(recovered) == payload

    def test_presets_round_trip(self):
        for name in machine_names():
            config = get_machine(name)
            assert machine_from_dict(machine_to_dict(config)) == config

    def test_hetero_mix_round_trips_with_custom_scheme_names(self):
        config = heterogeneous_corun_config(
            ["muontrap", "custom-scheme-x"])
        recovered = machine_from_dict(
            json.loads(json.dumps(machine_to_dict(config))))
        assert recovered == config
        assert recovered.core_schemes == ("muontrap", "custom-scheme-x")

    def test_core_and_protection_configs_round_trip(self):
        core = CoreConfig(mode="stt-future",
                          private_l2=CacheConfig(name="l2p",
                                                 size_bytes=1024,
                                                 associativity=2))
        assert CoreConfig.from_dict(core.to_dict()) == core
        protection = ProtectionConfig(clear_on_misspeculate=True)
        assert ProtectionConfig.from_dict(protection.to_dict()) == protection

    def test_exported_parts_compose_into_a_machine(self):
        # CoreConfig.to_dict() / ProtectionConfig.to_dict() stamp a
        # schema_version; embedding them in a larger description must
        # accept (and validate) that stamp.
        core = CoreConfig(mode="stt-future")
        config = machine_from_dict({"num_cores": 1,
                                    "cores": [core.to_dict()]})
        assert config.cores == (core,)
        protection = ProtectionConfig(clear_on_misspeculate=True)
        config = machine_from_dict({"protection": protection.to_dict()})
        assert config.protection == protection
        with pytest.raises(MachineFormatError,
                           match=r"cores\[0\].*schema_version 99"):
            machine_from_dict({"num_cores": 1,
                               "cores": [{"schema_version": 99}]})

    def test_builtin_mode_normalises_to_enum_custom_stays_string(self):
        config = machine_from_dict({"mode": "muontrap"})
        assert config.mode is ProtectionMode.MUONTRAP
        config = machine_from_dict({"mode": "my-scheme"})
        assert config.mode == "my-scheme"


class TestPartialDescriptions:
    def test_missing_keys_take_table1_defaults(self):
        assert machine_from_dict({}) == SystemConfig()

    def test_nested_partial_merges_with_defaults(self):
        config = machine_from_dict(
            {"protection": {"insecure_scoped_invalidate": True}})
        expected = replace(ProtectionConfig(), insecure_scoped_invalidate=True)
        assert config.protection == expected


class TestErrors:
    def test_unknown_top_level_key(self):
        with pytest.raises(MachineFormatError, match="'modee'"):
            machine_from_dict({"modee": "muontrap"})

    def test_unknown_nested_key_names_the_path(self):
        with pytest.raises(MachineFormatError,
                           match=r"SystemConfig\.cores\[0\].*'bogus'"):
            machine_from_dict({"num_cores": 1,
                               "cores": [{"bogus": 1}]})

    def test_version_mismatch(self):
        with pytest.raises(MachineFormatError, match="schema_version 99"):
            machine_from_dict({"schema_version": 99})

    def test_wrong_shape(self):
        with pytest.raises(MachineFormatError, match="mapping"):
            machine_from_dict([1, 2, 3])
        with pytest.raises(MachineFormatError, match="expected a list"):
            machine_from_dict({"num_cores": 1, "cores": {"mode": "x"}})
        with pytest.raises(MachineFormatError, match="name string"):
            machine_from_dict({"mode": 7})

    def test_domain_validation_errors_carry_the_context(self):
        with pytest.raises(MachineFormatError, match="SystemConfig"):
            machine_from_dict({"num_cores": 0})

    def test_versioned_output(self):
        assert machine_to_dict(SystemConfig())["schema_version"] \
            == MACHINE_SCHEMA_VERSION


class TestFiles:
    def test_save_and_load(self, tmp_path):
        config = get_machine("biglittle-asym")
        path = save_machine(config, tmp_path / "machine.json")
        assert load_machine(path) == config

    def test_load_errors_name_the_file(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(MachineFormatError, match="nope.json"):
            load_machine(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(MachineFormatError, match="not valid JSON"):
            load_machine(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"modee": 1}))
        with pytest.raises(MachineFormatError, match="wrong.json"):
            load_machine(wrong)

    def test_checked_in_example_machine_matches_the_preset(self):
        from pathlib import Path
        example = Path(__file__).resolve().parents[2] \
            / "examples" / "machines" / "biglittle-asym.json"
        assert load_machine(example) == get_machine("biglittle-asym")


class TestPresetsAsData:
    """The named presets are data; they must equal the historical
    constructor-built machines bit for bit."""

    def test_presets_equal_constructor_built_machines(self):
        expected = {
            "biglittle-muontrap": biglittle_system_config(
                [ProtectionMode.MUONTRAP], [ProtectionMode.MUONTRAP]),
            "biglittle-asym": biglittle_system_config(
                [ProtectionMode.MUONTRAP], [ProtectionMode.UNPROTECTED]),
            "asym-protect": heterogeneous_corun_config(
                [ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED]),
        }
        scoped = corun_system_config(ProtectionMode.MUONTRAP, num_cores=2)
        expected["scoped-invalidate"] = scoped.with_protection(
            replace(scoped.protection, insecure_scoped_invalidate=True))
        assert sorted(MACHINE_PRESETS) == sorted(expected)
        for name, config in expected.items():
            assert get_machine(name) == config, name

    def test_preset_data_is_json_ready(self):
        for name, data in MACHINE_PRESETS.items():
            assert machine_from_dict(json.loads(json.dumps(data))) \
                == get_machine(name)
