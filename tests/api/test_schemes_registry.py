"""The scheme registry: builtins, capability flags, runtime registration.

The acceptance bar for the registry redesign: a scheme registered from a
test file — no edits under ``src/repro/baselines/`` or ``sim/hetero.py`` —
runs end-to-end through ``repro.api.simulate`` and appears in
``python -m repro schemes``.
"""

import pytest

from repro import api
from repro.__main__ import main as cli_main
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import ProtectionConfig, ProtectionMode, SystemConfig
from repro.schemes import (
    SchemeSpec,
    UnknownSchemeError,
    available_schemes,
    figure_series_schemes,
    get_scheme,
    is_registered,
    register_scheme,
    scheme_config,
    scheme_names,
    unregister_scheme,
)
from repro.sim.system import build_memory_system

BUILTIN_ORDER = [
    "unprotected", "insecure-l0", "muontrap",
    "invisispec-spectre", "invisispec-future",
    "stt-spectre", "stt-future",
]


class SlowFrontDoorMemorySystem(UnprotectedMemorySystem):
    """A toy custom scheme: the unprotected hierarchy, renamed."""

    name = "slow-front-door"


@pytest.fixture
def custom_scheme():
    spec = register_scheme(SchemeSpec(
        name="slow-front-door",
        factory=SlowFrontDoorMemorySystem,
        display_name="SlowFrontDoor",
        description="test-only scheme registered from the test suite",
        timing_invariant=True))
    yield spec
    unregister_scheme("slow-front-door")


class TestBuiltins:
    def test_seven_builtins_in_canonical_order(self):
        names = [spec.name for spec in available_schemes()
                 if spec.builtin]
        assert names == BUILTIN_ORDER

    def test_figure_series_is_the_five_schemes_of_figures_3_and_4(self):
        assert [spec.name for spec in figure_series_schemes()] == [
            "muontrap", "invisispec-spectre", "invisispec-future",
            "stt-spectre", "stt-future"]

    def test_capability_flags_match_the_deprecated_enum_properties(self):
        for mode in ProtectionMode:
            spec = get_scheme(mode)
            assert spec.supports_filter_caches == mode.uses_filter_cache
            assert spec.delays_transmitters == mode.is_stt
            assert spec.uses_speculative_buffers == mode.is_invisispec

    def test_lookup_accepts_names_and_enum_members(self):
        assert get_scheme("muontrap") is get_scheme(ProtectionMode.MUONTRAP)

    def test_unknown_scheme_is_a_value_error_naming_the_registry(self):
        with pytest.raises(UnknownSchemeError, match="no-such-scheme"):
            get_scheme("no-such-scheme")
        with pytest.raises(ValueError, match="muontrap"):
            get_scheme("no-such-scheme")

    def test_builtins_cannot_be_replaced_or_unregistered(self):
        with pytest.raises(ValueError, match="built-in"):
            register_scheme(SchemeSpec(name="muontrap", factory=object))
        with pytest.raises(ValueError, match="built-in"):
            unregister_scheme("muontrap")

    def test_variant_factories_build_the_right_variant(self):
        future = build_memory_system(SystemConfig(mode="stt-future"))
        spectre = build_memory_system(SystemConfig(mode="stt-spectre"))
        assert future.future_variant and not spectre.future_variant
        invisi = build_memory_system(SystemConfig(mode="invisispec-future"))
        assert invisi.future_variant


class TestRegistration:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            SchemeSpec(name="", factory=object)
        with pytest.raises(ValueError, match="whitespace"):
            SchemeSpec(name="two words", factory=object)
        with pytest.raises(ValueError, match="callable"):
            SchemeSpec(name="x", factory=42)

    def test_display_name_defaults_to_the_name(self):
        assert SchemeSpec(name="x", factory=object).display_name == "x"

    def test_duplicate_registration_requires_replace(self, custom_scheme):
        with pytest.raises(ValueError, match="already registered"):
            register_scheme(SchemeSpec(name="slow-front-door",
                                       factory=object))
        register_scheme(SchemeSpec(name="slow-front-door",
                                   factory=SlowFrontDoorMemorySystem),
                        replace=True)

    def test_unregister_unknown_is_a_no_op(self):
        unregister_scheme("never-registered")

    def test_scheme_config_applies_default_protection(self):
        spec = register_scheme(SchemeSpec(
            name="bare-l0", factory=SlowFrontDoorMemorySystem,
            default_protection=ProtectionConfig.none()))
        try:
            config = scheme_config("bare-l0", num_cores=2)
            assert config.protection == ProtectionConfig.none()
            assert config.num_cores == 2
            assert scheme_config("muontrap").protection == ProtectionConfig()
        finally:
            unregister_scheme("bare-l0")


class TestCustomSchemeEndToEnd:
    def test_custom_mode_stays_a_string_in_configs(self, custom_scheme):
        config = SystemConfig(mode="slow-front-door")
        assert config.mode == "slow-front-door"
        assert config.mode_label == "slow-front-door"
        assert not config.is_scheme_heterogeneous

    def test_runs_through_api_simulate(self, custom_scheme):
        outcome = api.simulate("povray", "slow-front-door", seed=3,
                               instructions=600)
        assert outcome.label == "SlowFrontDoor"
        assert outcome.scheme == "slow-front-door"
        assert outcome.cycles > 0
        # The custom scheme is the unprotected hierarchy under a new name:
        # same trace, same seed, bit-identical timing.
        reference = api.simulate("povray", "unprotected", seed=3,
                                 instructions=600)
        assert outcome.cycles == reference.cycles

    def test_runs_heterogeneously_beside_a_builtin(self, custom_scheme):
        machine = SystemConfig(num_cores=2).with_mode(
            "muontrap").as_heterogeneous()
        cores = (machine.cores[0], machine.cores[1].with_mode(
            "slow-front-door"))
        machine = machine.with_core_configs(cores)
        assert machine.is_scheme_heterogeneous
        assert machine.mode_label == "muontrap+slow-front-door"
        outcome = api.simulate("mix-pointer-stream", machine, seed=3,
                               instructions=600)
        assert outcome.cycles > 0

    def test_appears_in_cli_schemes_listing(self, custom_scheme, capsys):
        assert cli_main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "slow-front-door (SlowFrontDoor) [registered]" in out
        assert "timing-invariant" in out
        for name in BUILTIN_ORDER:
            assert name in out

    def test_sweepable_from_the_command_line(self, custom_scheme, capsys,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "600")
        assert cli_main(["run", "--suite", "povray",
                         "--mode", "slow-front-door",
                         "--no-store", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "SlowFrontDoor" in out

    def test_unknown_mode_is_a_one_line_cli_error(self, capsys):
        assert cli_main(["run", "--suite", "povray",
                         "--mode", "not-a-scheme", "--no-store"]) == 2
        err = capsys.readouterr().err
        assert "unknown protection scheme" in err


class TestNames:
    def test_scheme_names_cover_builtins(self):
        names = scheme_names()
        for name in BUILTIN_ORDER:
            assert name in names

    def test_is_registered(self, custom_scheme):
        assert is_registered("muontrap")
        assert is_registered(ProtectionMode.STT_FUTURE)
        assert is_registered("slow-front-door")
        assert not is_registered("nope")
