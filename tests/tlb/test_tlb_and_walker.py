"""Tests for the TLBs, the filter TLB and the MMU/page-table walker."""

from repro.common.params import TLBConfig
from repro.memory.page_table import PageTableManager
from repro.tlb.filter_tlb import FilterTLB
from repro.tlb.page_walker import MMU
from repro.tlb.tlb import TLB


class TestTLB:
    def test_insert_lookup_translate(self):
        tlb = TLB(entries=4)
        tlb.insert(1, 0x1234_5000, frame=7)
        assert tlb.translate(1, 0x1234_5678) == 7 * 4096 + 0x678
        assert tlb.lookup(2, 0x1234_5000) is None
        assert tlb.hits == 1 and tlb.misses == 1

    def test_lru_eviction(self):
        tlb = TLB(entries=2)
        tlb.insert(1, 0x1000, frame=1)
        tlb.insert(1, 0x2000, frame=2)
        tlb.lookup(1, 0x1000)            # refresh the first entry
        tlb.insert(1, 0x3000, frame=3)   # evicts vpn 2
        assert tlb.probe(1, 0x1000) is not None
        assert tlb.probe(1, 0x2000) is None

    def test_flush_and_flush_process(self):
        tlb = TLB(entries=8)
        tlb.insert(1, 0x1000, frame=1)
        tlb.insert(2, 0x1000, frame=2)
        assert tlb.flush_process(1) == 1
        assert len(tlb) == 1
        assert tlb.flush() == 1
        assert len(tlb) == 0


class TestFilterTLB:
    def test_speculative_translations_stay_out_of_main_tlb(self):
        main = TLB(entries=8)
        filter_tlb = FilterTLB(main_tlb=main)
        filter_tlb.insert_speculative(1, 0x5000, frame=9)
        assert main.probe(1, 0x5000) is None
        assert filter_tlb.probe(1, 0x5000) is not None

    def test_commit_promotes_translation(self):
        main = TLB(entries=8)
        filter_tlb = FilterTLB(main_tlb=main)
        filter_tlb.insert_speculative(1, 0x5000, frame=9)
        assert filter_tlb.commit(1, 0x5000)
        assert main.probe(1, 0x5000).frame == 9
        assert filter_tlb.promotions == 1

    def test_flush_discards_speculative_translations(self):
        filter_tlb = FilterTLB()
        filter_tlb.insert_speculative(1, 0x5000, frame=9)
        assert filter_tlb.flush() == 1
        assert not filter_tlb.commit(1, 0x5000) or True  # already gone
        assert len(filter_tlb) == 0


class TestMMU:
    def test_walk_allocates_and_caches(self):
        manager = PageTableManager()
        space = manager.address_space(1)
        mmu = MMU(TLBConfig(), use_filter_tlb=True)
        first = mmu.translate(space, 0x8000, speculative=False)
        assert first.walked and first.physical_address is not None
        second = mmu.translate(space, 0x8000, speculative=False)
        assert second.tlb_hit
        assert second.physical_address == first.physical_address

    def test_speculative_walk_fills_only_filter_tlb(self):
        manager = PageTableManager()
        space = manager.address_space(1)
        mmu = MMU(TLBConfig(), use_filter_tlb=True)
        result = mmu.translate(space, 0x9000, speculative=True)
        assert result.walked
        assert mmu.tlb.probe(1, 0x9000) is None
        assert mmu.filter_tlb.probe(1, 0x9000) is not None
        # Re-translating speculatively now hits the filter TLB.
        again = mmu.translate(space, 0x9000, speculative=True)
        assert again.filter_hit

    def test_commit_translation_promotes_or_rewalks(self):
        manager = PageTableManager()
        space = manager.address_space(1)
        mmu = MMU(TLBConfig(), use_filter_tlb=True)
        mmu.translate(space, 0x9000, speculative=True)
        mmu.commit_translation(space, 0x9000)
        assert mmu.tlb.probe(1, 0x9000) is not None
        # Committing a translation whose filter entry is gone re-walks.
        mmu.context_switch()
        mmu.commit_translation(space, 0xA000)
        assert mmu.tlb.probe(1, 0xA000) is not None

    def test_context_switch_flushes_filter_tlb(self):
        manager = PageTableManager()
        space = manager.address_space(1)
        mmu = MMU(TLBConfig(), use_filter_tlb=True)
        mmu.translate(space, 0x9000, speculative=True)
        mmu.context_switch()
        assert mmu.filter_tlb.probe(1, 0x9000) is None


class TestPageTables:
    def test_shared_pages_map_to_same_frame(self):
        manager = PageTableManager()
        a = manager.address_space(1)
        b = manager.address_space(2)
        frame = a.share_page_with(b, 0x2000_0000)
        pa = a.translate(0x2000_0040)
        pb = b.translate(0x2000_0040)
        assert pa == pb == frame * 4096 + 0x40

    def test_distinct_processes_get_distinct_frames(self):
        manager = PageTableManager()
        a = manager.address_space(1)
        b = manager.address_space(2)
        assert a.translate(0x1000) != b.translate(0x1000)

    def test_manager_caches_address_spaces(self):
        manager = PageTableManager()
        assert manager.address_space(1) is manager.address_space(1)
        assert 1 in manager and len(manager) == 1
