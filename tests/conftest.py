"""Shared fixtures and test-tiering hooks for the test suite.

Tiering: tests marked ``slow`` are excluded from the default run (tier-1,
see ``pytest.ini``); everything under ``tests/integration`` is additionally
auto-marked ``integration`` so either tier can be selected with ``-m``.

``--update-golden`` regenerates the checked-in golden snapshots used by
``tests/integration/test_golden_stats.py`` instead of comparing against
them.
"""

from pathlib import Path

import pytest

from repro.common.params import (
    ProtectionMode,
    SystemConfig,
    default_system_config,
)
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup

#: The seed every seeded fixture (and the golden snapshots) pins.
FIXTURE_SEED = 1234


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden snapshot files instead of comparing to them")


def pytest_collection_modifyitems(config, items):
    integration_root = Path(__file__).parent / "integration"
    for item in items:
        if integration_root in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.integration)


@pytest.fixture
def update_golden(request) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def config() -> SystemConfig:
    """The Table 1 system in MuonTrap mode, single core."""
    return default_system_config()


@pytest.fixture
def unprotected_config() -> SystemConfig:
    return default_system_config(mode=ProtectionMode.UNPROTECTED)


@pytest.fixture
def seeded_config():
    """A (config, seed) pair for tests that build whole systems.

    Sharing one pinned seed keeps trace-cache reuse high (the workload for
    a given benchmark is generated once per process) and makes failures
    reproducible by construction.
    """
    return default_system_config(), FIXTURE_SEED


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(42)


@pytest.fixture
def stats() -> StatGroup:
    return StatGroup("test")
