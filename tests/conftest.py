"""Shared fixtures for the test suite."""

import pytest

from repro.common.params import (
    ProtectionMode,
    SystemConfig,
    default_system_config,
)
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup


@pytest.fixture
def config() -> SystemConfig:
    """The Table 1 system in MuonTrap mode, single core."""
    return default_system_config()


@pytest.fixture
def unprotected_config() -> SystemConfig:
    return default_system_config(mode=ProtectionMode.UNPROTECTED)


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(42)


@pytest.fixture
def stats() -> StatGroup:
    return StatGroup("test")
