"""Tests for the baseline and comparison memory systems."""

from repro.baselines.insecure_l0 import InsecureL0MemorySystem
from repro.baselines.invisispec import InvisiSpecMemorySystem
from repro.baselines.stt import STTMemorySystem
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import ProtectionMode, SystemConfig


def cfg(mode=ProtectionMode.UNPROTECTED, cores=1):
    return SystemConfig(mode=mode, num_cores=cores)


class TestUnprotected:
    def test_speculative_load_fills_l1(self):
        memory = UnprotectedMemorySystem(cfg())
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.hierarchy.l1d(0).contains(physical)
        assert memory.hierarchy.l2.contains(physical)

    def test_second_access_is_a_hit(self):
        memory = UnprotectedMemorySystem(cfg())
        first = memory.load(0, 0, 0x1_0000, 100, speculative=True)
        second = memory.load(0, 0, 0x1_0000, 400, speculative=True)
        assert second.latency < first.latency
        assert second.hit_level == "l1"

    def test_speculative_store_gets_ownership(self):
        memory = UnprotectedMemorySystem(cfg())
        memory.store_address_ready(0, 0, 0x2_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x2_0000)
        assert memory.hierarchy.l1d(0).state_of(physical).can_write

    def test_context_switch_clears_nothing(self):
        memory = UnprotectedMemorySystem(cfg())
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        memory.switch_to_process(0, 7)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.hierarchy.l1d(0).contains(physical)


class TestInsecureL0:
    def test_l0_hit_after_fill(self):
        memory = InsecureL0MemorySystem(cfg(ProtectionMode.INSECURE_L0))
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        repeat = memory.load(0, 0, 0x1_0000, 300, speculative=True)
        assert repeat.hit_level == "l0"
        assert repeat.latency == 1

    def test_l1_also_filled(self):
        memory = InsecureL0MemorySystem(cfg(ProtectionMode.INSECURE_L0))
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.hierarchy.l1d(0).contains(physical)
        assert memory.data_l0(0).contains_physical(physical)


class TestInvisiSpec:
    def test_speculative_load_does_not_fill_any_cache(self):
        memory = InvisiSpecMemorySystem(cfg(ProtectionMode.INVISISPEC_SPECTRE))
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert not memory.hierarchy.l1d(0).contains(physical)
        assert not memory.hierarchy.l2.contains(physical)
        assert memory.speculative_buffer_contains(0, physical)

    def test_validation_fills_l1_and_counts(self):
        memory = InvisiSpecMemorySystem(cfg(ProtectionMode.INVISISPEC_FUTURE))
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        latency = memory.validation_latency(0, 0, 0x1_0000, 400)
        assert latency > 0
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.hierarchy.l1d(0).contains(physical)
        assert memory.validations == 1

    def test_squash_discards_speculative_buffer(self):
        memory = InvisiSpecMemorySystem(cfg(ProtectionMode.INVISISPEC_SPECTRE))
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        memory.squash(0, 200)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert not memory.speculative_buffer_contains(0, physical)

    def test_variant_names_and_modes(self):
        spectre = InvisiSpecMemorySystem(cfg(), future_variant=False)
        future = InvisiSpecMemorySystem(cfg(), future_variant=True)
        assert spectre.mode is ProtectionMode.INVISISPEC_SPECTRE
        assert future.mode is ProtectionMode.INVISISPEC_FUTURE
        assert spectre.name != future.name


class TestSTT:
    def test_memory_side_matches_unprotected(self):
        memory = STTMemorySystem(cfg(ProtectionMode.STT_SPECTRE))
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.hierarchy.l1d(0).contains(physical)

    def test_delayed_forward_counter(self):
        memory = STTMemorySystem(cfg(ProtectionMode.STT_FUTURE),
                                 future_variant=True)
        assert memory.delays_dependent_transmitters
        memory.record_delayed_forward()
        memory.record_delayed_forward()
        assert memory.delayed_forwards == 2
