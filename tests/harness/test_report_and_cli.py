"""Tests for report rendering, env validation and the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main
from repro.harness.report import Report
from repro.sim.runner import instructions_per_workload, parallel_jobs
from repro.sim.sweeps import filter_cache_associativity_configs

SERIES = {
    "MuonTrap": {"hmmer": 1.05, "mcf": 1.20},
    "STT-Future": {"hmmer": 1.40, "mcf": 1.80},
}


class TestReport:
    def make(self):
        return Report(benchmarks=["hmmer", "mcf"], series=SERIES,
                      title="demo")

    def test_rows_have_header_body_and_geomean_footer(self):
        rows = self.make().rows()
        assert rows[0] == ["benchmark", "MuonTrap", "STT-Future"]
        assert rows[1] == ["hmmer", "1.050", "1.400"]
        assert rows[-1][0] == "geomean"

    def test_geomeans_computed_when_not_given(self):
        report = self.make()
        assert report.geomeans["MuonTrap"] == pytest.approx(
            (1.05 * 1.20) ** 0.5)

    def test_markdown_contains_alignment_row_and_title(self):
        markdown = self.make().to_markdown()
        assert markdown.startswith("### demo")
        assert "| --- |" in markdown
        assert "| hmmer | 1.050 | 1.400 |" in markdown

    def test_csv_round_trips_through_csv_module(self):
        import csv
        import io
        rows = list(csv.reader(io.StringIO(self.make().to_csv())))
        assert rows == self.make().rows()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown report format"):
            self.make().render("html")


class TestGeomeanFooterWithoutData:
    """A series with no completed cells foots ``n/a``, never 0.000.

    ``geometric_mean([])`` falls back to 0.0, and the footer used to
    format that fallback as a value — an all-quarantined scheme read as
    "0.000", i.e. infinitely faster than the baseline, in every renderer.
    """

    def make(self):
        # One healthy series beside one with no values at all (the shape
        # CampaignResult.normalised() produces when every cell of a
        # series failed: the label survives, its values dict is empty).
        return Report(benchmarks=["hmmer", "mcf"],
                      series={"MuonTrap": {"hmmer": 1.05, "mcf": 1.20},
                              "Broken": {}},
                      failed={("hmmer", "Broken"), ("mcf", "Broken")})

    def test_text_footer_reads_na(self):
        rows = self.make().rows()
        assert rows[-1][0] == "geomean"
        assert rows[-1][1] == "1.122"          # healthy series unaffected
        assert rows[-1][2] == "n/a"
        assert rows[1][2] == "FAILED"          # body cells stay annotated

    def test_every_renderer_agrees(self):
        report = self.make()
        assert "n/a" in report.to_text()
        assert "| n/a |" in report.to_markdown()
        assert "geomean,1.122,n/a" in report.to_csv()
        assert "0.000" not in report.render("text")

    def test_explicit_geomeans_are_respected(self):
        report = Report(benchmarks=["hmmer"],
                        series={"S": {"hmmer": 0.9}},
                        geomeans={"S": 0.9})
        assert report.rows()[-1] == ["geomean", "0.900"]


class TestEnvValidation:
    def test_instructions_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "2500")
        assert instructions_per_workload() == 2500

    def test_explicit_instructions_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "2500")
        assert instructions_per_workload(5000) == 5000
        assert instructions_per_workload(default=1000) == 2500

    def test_instructions_env_rejects_too_small(self, monkeypatch):
        # A set-but-too-small value is a configuration mistake, not a
        # request for the floor: it must fail like a non-integer does.
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "10")
        with pytest.raises(ValueError,
                           match="REPRO_INSTRUCTIONS must be at least 500"):
            instructions_per_workload()

    def test_jobs_env_rejects_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError,
                           match="REPRO_JOBS must be at least 1"):
            parallel_jobs()

    def test_instructions_env_rejects_non_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "lots")
        with pytest.raises(ValueError, match="REPRO_INSTRUCTIONS"):
            instructions_per_workload()

    def test_jobs_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert parallel_jobs() == 3
        assert parallel_jobs(default=1) == 3

    def test_jobs_env_rejects_non_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            parallel_jobs()

    def test_jobs_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert parallel_jobs(default=1) == 1
        assert parallel_jobs() >= 1


class TestSweepClamping:
    def test_clamped_duplicate_is_skipped_with_warning(self):
        with pytest.warns(UserWarning, match="duplicates the 32-way"):
            configs = filter_cache_associativity_configs([16, 32, 64],
                                                         size_bytes=2048)
        assert sorted(configs) == [16, 32]

    def test_clamped_non_duplicate_kept_with_warning(self):
        with pytest.warns(UserWarning, match="clamping"):
            configs = filter_cache_associativity_configs([64],
                                                         size_bytes=2048)
        assert sorted(configs) == [32]
        assert configs[32].data_filter.associativity == 32

    def test_unclamped_sweep_warns_nothing(self, recwarn):
        configs = filter_cache_associativity_configs([1, 2, 4],
                                                     size_bytes=2048)
        assert sorted(configs) == [1, 2, 4]
        assert not recwarn.list


class TestCli:
    @pytest.fixture(autouse=True)
    def fast_runs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "600")
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        self.store_dir = tmp_path / "store"

    def run_cli(self, *argv):
        return main(list(argv))

    def test_run_then_rerun_serves_from_store(self, capsys):
        args = ("run", "--suite", "hmmer", "--suite", "povray",
                "--mode", "muontrap", "--jobs", "2")
        assert self.run_cli(*args) == 0
        first = capsys.readouterr().out
        assert "4 executed, 0 store hits" in first
        assert "geomean" in first

        assert self.run_cli(*args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 4 store hits" in second
        assert "100% cached" in second

    def test_report_renders_markdown(self, capsys):
        assert self.run_cli("report", "--suite", "hmmer",
                            "--mode", "muontrap",
                            "--format", "markdown") == 0
        out = capsys.readouterr().out
        assert "| benchmark | MuonTrap |" in out
        assert "| geomean |" in out

    def test_clean_empties_store(self, capsys):
        self.run_cli("run", "--suite", "hmmer", "--mode", "muontrap")
        capsys.readouterr()
        assert self.run_cli("clean") == 0
        assert "removed 2 cached results" in capsys.readouterr().out
        assert not list(self.store_dir.glob("*.json"))

    def test_suites_lists_builtins(self, capsys):
        assert self.run_cli("suites") == 0
        out = capsys.readouterr().out
        assert "spec_int (11)" in out
        assert "parsec (7)" in out

    def test_engine_flag_changes_nothing_but_reuses_the_store(self, capsys):
        # The engines are golden-tested bit-identical and the store key
        # excludes the engine choice, so a --engine packed re-run of a
        # vectorized campaign is served entirely from the store — the
        # strongest CLI-level statement of both properties at once.
        assert self.run_cli("run", "--suite", "hmmer",
                            "--mode", "muontrap") == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 store hits" in first
        assert self.run_cli("run", "--suite", "hmmer", "--mode", "muontrap",
                            "--engine", "packed") == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 store hits" in second
        assert first.splitlines()[-2:] == second.splitlines()[-2:]
