"""Chaos tier: real campaigns under injected faults.

These tests lock in the fault-tolerance invariant the executor layer
promises: a campaign that suffers worker crashes, hangs, transient
exceptions or torn store writes produces *byte-identical* results to an
undisturbed run — faults cost re-execution, never correctness.
"""

import json

import pytest

from repro.common.params import ProtectionMode, SystemConfig
from repro.harness.campaign import Campaign
from repro.harness.executor import CELL_TIMEOUT_ENV, MAX_RETRIES_ENV
from repro.harness.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    reset_fault_plan,
)
from repro.harness.report import FAILED_CELL, Report
from repro.harness.store import ResultStore, result_to_dict
from repro.sim.runner import unprotected_config

INSTRUCTIONS = 600

CONFIGS = {"MuonTrap": SystemConfig(mode=ProtectionMode.MUONTRAP)}


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in (FAULTS_ENV, MAX_RETRIES_ENV, CELL_TIMEOUT_ENV):
        monkeypatch.delenv(name, raising=False)
    reset_fault_plan()
    yield
    reset_fault_plan()


def make_campaign(store=None, jobs=1, benchmarks=("hmmer", "povray"),
                  **kwargs):
    return Campaign(list(benchmarks), configs=CONFIGS,
                    baseline_config=unprotected_config(),
                    instructions=INSTRUCTIONS, store=store, jobs=jobs,
                    **kwargs)


def assert_identical_runs(clean, chaotic):
    assert clean.runs.keys() == chaotic.runs.keys()
    for key, result in clean.runs.items():
        assert (json.dumps(result_to_dict(result), sort_keys=True)
                == json.dumps(result_to_dict(chaotic.runs[key]),
                              sort_keys=True))
    assert clean.geomeans() == chaotic.geomeans()


class TestTransientFaultsAreInvisible:
    def test_injected_exceptions_leave_results_byte_identical(
            self, monkeypatch):
        clean = make_campaign(jobs=2).run()
        monkeypatch.setenv(FAULTS_ENV, "exc:0.6:7")
        chaotic = make_campaign(jobs=2).run()
        assert chaotic.stats.retries > 0
        assert not chaotic.failures
        assert_identical_runs(clean, chaotic)

    def test_killed_workers_never_hang_the_sweep(self, monkeypatch):
        # Every cell's first attempt dies abruptly (os._exit — the view
        # from outside is SIGKILL/OOM): the supervisor must detect each
        # death, restart the worker and re-dispatch, and the sweep must
        # still converge to the clean answer.
        clean = make_campaign(jobs=2).run()
        monkeypatch.setenv(FAULTS_ENV, "kill:1.0:5")
        chaotic = make_campaign(jobs=2).run()
        assert chaotic.stats.worker_restarts > 0
        assert not chaotic.failures
        assert_identical_runs(clean, chaotic)

    def test_hung_cells_are_timed_out_and_redispatched(self, monkeypatch):
        clean = make_campaign(jobs=2, benchmarks=("hmmer",)).run()
        monkeypatch.setenv(FAULTS_ENV, "hang:1.0:3")
        chaotic = make_campaign(jobs=2, benchmarks=("hmmer",),
                                cell_timeout=0.5).run()
        assert chaotic.stats.timeouts > 0
        assert not chaotic.failures
        assert_identical_runs(clean, chaotic)

    def test_serial_executor_never_injects_fatal_kinds(self, monkeypatch):
        # jobs=1 runs in the caller's process, where a kill fault would
        # take down the campaign itself and a hang would block forever;
        # the serial executor must only admit exc faults.
        monkeypatch.setenv(FAULTS_ENV, "kill:1.0:5,hang:1.0:5")
        result = make_campaign(jobs=1, benchmarks=("hmmer",)).run()
        assert not result.failures
        assert result.stats.retries == 0


def partial_failure_seed(cells):
    """A fault seed hitting some — not all, not none — of these cells."""
    keys = [spec.key() for spec in cells]
    for seed in range(200):
        plan = FaultPlan([FaultSpec(kind="exc", rate=0.5, seed=seed,
                                    attempts=99)])
        hit = [key for key in keys if plan.decide("exc", key)]
        if 0 < len(hit) < len(keys):
            return seed, set(hit)
    raise AssertionError("no seed yields a partial failure split")


class TestQuarantine:
    def test_permanent_faults_quarantine_but_the_sweep_completes(
            self, monkeypatch, tmp_path):
        campaign = make_campaign(store=ResultStore(tmp_path), jobs=2,
                                 max_retries=1)
        cells = campaign.cells()
        seed, doomed = partial_failure_seed(cells)
        monkeypatch.setenv(FAULTS_ENV, f"exc:0.5:{seed}:99")
        result = campaign.run()
        # Exactly the planned cells are quarantined; the rest completed.
        assert {cell.key for cell in result.failures} == doomed
        assert all(cell.attempts == 2 for cell in result.failures)
        assert len(result.runs) == len(cells) - len(doomed)
        assert result.stats.failed == len(doomed)
        # Reports annotate the gaps and keep geomeans over completed cells.
        report = Report.from_campaign(result)
        rendered = report.render("text")
        assert FAILED_CELL in rendered
        for label, geomean in result.geomeans().items():
            assert geomean > 0 or not result.normalised()[label]
        # Looking up a quarantined cell names the cause.
        failure = result.failures[0]
        with pytest.raises(KeyError, match="quarantined"):
            result.result(failure.benchmark, failure.label, failure.seed)

    def test_rerun_without_the_fault_heals_the_matrix(self, monkeypatch,
                                                      tmp_path):
        store = ResultStore(tmp_path)
        campaign = make_campaign(store=store, jobs=1, max_retries=0)
        cells = campaign.cells()
        seed, doomed = partial_failure_seed(cells)
        monkeypatch.setenv(FAULTS_ENV, f"exc:0.5:{seed}:99")
        first = campaign.run()
        assert first.failures
        # The fault clears; a fresh campaign over the same store computes
        # exactly the missing cells and completes the matrix.
        monkeypatch.delenv(FAULTS_ENV)
        reset_fault_plan()
        healed = make_campaign(store=store, jobs=1).run()
        assert not healed.failures
        assert len(healed.runs) == len(cells)
        assert healed.stats.executed == len(doomed)
        assert healed.stats.store_hits == len(cells) - len(doomed)


class TestSharedTracesUnderChaos:
    """Worker kills must not corrupt or leak the shared trace registry.

    Parallel campaigns pre-materialise traces into the fork-inherited
    shared registry; every worker — including the replacements spawned
    after a kill — attaches to the same read-only pages.  Chaos must not
    change that story: results stay byte-identical, and the parent always
    empties the registry once the pool is gone (the fork model has no
    OS-level segments to unlink, so a leak here would be parent memory
    pinned across campaigns).
    """

    def test_killed_workers_leave_shared_traces_intact(self, monkeypatch):
        from repro.workloads.cache import shared_trace_count
        clean = make_campaign(jobs=2).run()
        assert clean.stats.shared_traces == 2
        assert shared_trace_count() == 0
        monkeypatch.setenv(FAULTS_ENV, "kill:1.0:5")
        chaotic = make_campaign(jobs=2).run()
        assert chaotic.stats.worker_restarts > 0
        assert chaotic.stats.shared_traces == 2
        assert not chaotic.failures
        assert_identical_runs(clean, chaotic)
        # Cleanup on the chaotic path too: no entries survive the run.
        assert shared_trace_count() == 0

    def test_quarantine_still_clears_the_registry(self, monkeypatch):
        from repro.workloads.cache import shared_trace_count
        monkeypatch.setenv(FAULTS_ENV, "exc:1.0:3:99")
        result = make_campaign(jobs=2, max_retries=0,
                               benchmarks=("hmmer",)).run()
        assert result.failures          # every cell quarantined ...
        assert shared_trace_count() == 0  # ... and nothing leaked


class TestResume:
    def test_resume_recomputes_only_missing_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        first = make_campaign(store=store, jobs=1).run()
        unique = len(first.runs)
        assert first.stats.executed == unique
        # Simulate a crash that lost one persisted cell.
        lost = next(iter(store.keys()))
        (tmp_path / f"{lost}.json").unlink()
        resumed = make_campaign(store=store, jobs=1).run()
        assert resumed.stats.executed == 1
        assert resumed.stats.store_hits == unique - 1
        assert_identical_runs(first, resumed)

    def test_torn_store_entries_cost_one_recompute_only(self, monkeypatch,
                                                        tmp_path):
        clean = make_campaign(store=ResultStore(tmp_path / "clean"),
                              jobs=1).run()
        # Every write in this run is torn right after it lands (models a
        # crash mid-write): the run itself is unaffected (results are
        # in memory) ...
        store_root = tmp_path / "torn"
        monkeypatch.setenv(FAULTS_ENV, "corrupt:1.0:1")
        torn = make_campaign(store=ResultStore(store_root), jobs=1).run()
        assert_identical_runs(clean, torn)
        # ... and the next run detects every torn entry via the integrity
        # digest, evicts it and recomputes — landing on the same bytes.
        monkeypatch.delenv(FAULTS_ENV)
        reset_fault_plan()
        store = ResultStore(store_root)
        recovered = make_campaign(store=store, jobs=1).run()
        assert store.evictions == len(clean.runs)
        assert recovered.stats.executed == len(clean.runs)
        assert_identical_runs(clean, recovered)
