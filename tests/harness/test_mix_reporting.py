"""Mix-aware reporting: attribution, permutation invariance, geomeans.

Seed-pinned property tests over randomised campaign results: the
per-constituent attribution of a co-run result must account for exactly
the machine totals, the normalised tables must not depend on which core a
constituent happened to land on, and every geometric mean the harness
reports must match an independent reference computation.
"""

import math
import random

import pytest

from repro.common.params import ProtectionMode
from repro.cpu.core import CoreResult
from repro.harness.campaign import Campaign, CampaignResult
from repro.harness.report import GEOMEAN_ROW, Report
from repro.sim.simulator import SimulationResult
from repro.workloads.mixes import get_machine

SEEDS = [0, 1, 2, 3]

BENCHMARK_POOL = ["mcf", "lbm", "omnetpp", "libquantum", "povray"]


def _random_corun_result(rng: random.Random, benchmark: str,
                         mode: str = "muontrap",
                         with_warmup: bool = False) -> SimulationResult:
    """A synthetic co-run result with the simulator's aggregate accounting."""
    num_cores = rng.randint(2, 6)
    owners = [rng.choice(BENCHMARK_POOL) for _ in range(num_cores)]
    warm_cycles = [rng.randint(50, 200) if with_warmup else 0
                   for _ in range(num_cores)]
    warm_instructions = [rng.randint(20, 80) if with_warmup else 0
                         for _ in range(num_cores)]
    cores = [CoreResult(core_id=core_id,
                        committed_instructions=rng.randint(200, 900),
                        cycles=warm + rng.randint(500, 5000))
             for core_id, warm in enumerate(warm_cycles)]
    cycles = max(core.cycles - warm
                 for core, warm in zip(cores, warm_cycles))
    instructions = sum(core.committed_instructions - warm
                       for core, warm in zip(cores, warm_instructions))
    return SimulationResult(
        benchmark=benchmark, mode=mode, cycles=cycles,
        instructions=instructions, core_results=cores,
        core_benchmarks=owners,
        core_warmup_cycles=warm_cycles if with_warmup else [],
        core_warmup_instructions=warm_instructions if with_warmup else [])


def _permuted(result: SimulationResult,
              order: list) -> SimulationResult:
    """The same machine result with its cores listed in another order."""
    warm_cycles = (result.core_warmup_cycles
                   or [0] * len(result.core_results))
    warm_instructions = (result.core_warmup_instructions
                         or [0] * len(result.core_results))
    return SimulationResult(
        benchmark=result.benchmark, mode=result.mode, cycles=result.cycles,
        instructions=result.instructions,
        core_results=[result.core_results[index] for index in order],
        core_benchmarks=[result.core_benchmarks[index] for index in order],
        core_warmup_cycles=([warm_cycles[index] for index in order]
                            if result.core_warmup_cycles else []),
        core_warmup_instructions=(
            [warm_instructions[index] for index in order]
            if result.core_warmup_instructions else []))


def _synthetic_campaign(rng: random.Random, with_warmup: bool = False
                        ) -> CampaignResult:
    """A campaign over random mixes: one baseline plus two scheme labels."""
    benchmarks = ["mix-a", "mix-b", "mix-c"]
    labels = ["baseline", "MuonTrap", "STT"]
    runs = {}
    for benchmark in benchmarks:
        # All labels of one benchmark share the placement (same workload),
        # exactly as a real campaign's constant-trace methodology does.
        template = _random_corun_result(rng, benchmark,
                                        with_warmup=with_warmup)
        for label in labels:
            scale = 1.0 if label == "baseline" else rng.uniform(0.9, 2.0)
            cores = [CoreResult(core_id=core.core_id,
                                committed_instructions=core.committed_instructions,
                                cycles=int(core.cycles * scale) + 1)
                     for core in template.core_results]
            warm = (template.core_warmup_cycles
                    or [0] * len(cores))
            warm_instructions = (template.core_warmup_instructions
                                 or [0] * len(cores))
            runs[(benchmark, label, 0)] = SimulationResult(
                benchmark=benchmark, mode=label, cycles=max(
                    core.cycles - w for core, w in zip(cores, warm)),
                instructions=template.instructions,
                core_results=cores,
                core_benchmarks=list(template.core_benchmarks),
                core_warmup_cycles=list(template.core_warmup_cycles),
                core_warmup_instructions=list(
                    template.core_warmup_instructions))
    return CampaignResult(benchmarks=benchmarks,
                          labels=["MuonTrap", "STT", "baseline"],
                          baseline_label="baseline", seeds=[0], runs=runs)


class TestAttributionSumsToMachineTotals:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("with_warmup", [False, True],
                             ids=["cold", "warmup"])
    def test_parts_account_for_the_aggregate(self, seed, with_warmup):
        rng = random.Random(seed)
        for _ in range(25):
            result = _random_corun_result(rng, "mix-x",
                                          with_warmup=with_warmup)
            parts = result.per_benchmark()
            assert set(parts) == set(result.core_benchmarks)
            assert result.cycles == max(part.cycles
                                        for part in parts.values())
            assert result.instructions == sum(part.instructions
                                              for part in parts.values())
            # Every core is attributed to exactly one constituent.
            assert sum(len(part.core_results)
                       for part in parts.values()) == len(
                           result.core_results)


class TestPermutationInvariance:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_benchmark_is_core_order_invariant(self, seed):
        rng = random.Random(seed)
        for _ in range(25):
            result = _random_corun_result(rng, "mix-x", with_warmup=True)
            order = list(range(len(result.core_results)))
            rng.shuffle(order)
            shuffled = _permuted(result, order)
            original = {name: (part.cycles, part.instructions)
                        for name, part in result.per_benchmark().items()}
            permuted = {name: (part.cycles, part.instructions)
                        for name, part in shuffled.per_benchmark().items()}
            assert original == permuted

    @pytest.mark.parametrize("seed", SEEDS)
    def test_normalised_tables_are_core_order_invariant(self, seed):
        rng = random.Random(seed)
        campaign = _synthetic_campaign(rng)
        reference = campaign.per_constituent_normalised()
        # Permute every machine's cores consistently per benchmark (the
        # same workload placement permutation for all labels, as one
        # scheduler decision would produce).
        permuted_runs = {}
        orders = {}
        for (benchmark, label, seed_key), result in campaign.runs.items():
            if benchmark not in orders:
                order = list(range(len(result.core_results)))
                rng.shuffle(order)
                orders[benchmark] = order
            permuted_runs[(benchmark, label, seed_key)] = _permuted(
                result, orders[benchmark])
        permuted = CampaignResult(
            benchmarks=campaign.benchmarks, labels=campaign.labels,
            baseline_label=campaign.baseline_label, seeds=campaign.seeds,
            runs=permuted_runs).per_constituent_normalised()
        assert reference == permuted


class TestGeomeansMatchReference:
    @staticmethod
    def _reference_geomean(values):
        positive = [value for value in values if value > 0]
        if not positive:
            return 0.0
        return math.exp(sum(math.log(value) for value in positive)
                        / len(positive))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_campaign_geomeans(self, seed):
        campaign = _synthetic_campaign(random.Random(seed))
        for label, values in campaign.normalised().items():
            expected = self._reference_geomean(values.values())
            assert campaign.geomeans()[label] == pytest.approx(expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_per_constituent_geomeans(self, seed):
        campaign = _synthetic_campaign(random.Random(seed))
        series = campaign.per_constituent_normalised()
        geomeans = campaign.per_constituent_geomeans()
        for label, values in series.items():
            expected = self._reference_geomean(values.values())
            assert geomeans[label] == pytest.approx(expected)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_report_footer_matches_reference(self, seed):
        campaign = _synthetic_campaign(random.Random(seed))
        report = Report.from_campaign_constituents(campaign)
        rows = report.rows()
        assert rows[-1][0] == GEOMEAN_ROW
        for column, label in enumerate(report.labels, start=1):
            expected = self._reference_geomean(
                campaign.per_constituent_normalised()[label].values())
            assert float(rows[-1][column]) == pytest.approx(expected,
                                                            abs=5e-4)


class TestConstituentReportShape:
    def test_rows_follow_benchmark_then_placement_order(self):
        campaign = _synthetic_campaign(random.Random(7))
        report = Report.from_campaign_constituents(campaign)
        prefixes = [row.split(":", 1)[0] for row in report.benchmarks]
        # Grouped by campaign benchmark order.
        assert prefixes == sorted(
            prefixes, key=campaign.benchmarks.index)
        for benchmark in campaign.benchmarks:
            members = [row.split(":", 1)[1] for row in report.benchmarks
                       if row.startswith(benchmark + ":")]
            placement_order = list(dict.fromkeys(
                campaign.runs[(benchmark, "MuonTrap", 0)].core_benchmarks))
            assert members == placement_order

    def test_baseline_normalises_to_one(self):
        """Per-constituent values of an identical-to-baseline label are 1."""
        rng = random.Random(11)
        campaign = _synthetic_campaign(rng)
        # Overwrite one label with exact copies of the baseline runs.
        for benchmark in campaign.benchmarks:
            campaign.runs[(benchmark, "MuonTrap", 0)] = campaign.runs[
                (benchmark, "baseline", 0)]
        series = campaign.per_constituent_normalised()
        assert all(value == pytest.approx(1.0)
                   for value in series["MuonTrap"].values())


class TestEndToEndMachineSweep:
    def test_machine_preset_campaign_produces_constituent_tables(self):
        """A real (tiny) sweep: one mix on a heterogeneous preset, per-
        constituent table rendered with rows for both members."""
        campaign = Campaign(
            ["mix-pointer-stream"],
            configs={"biglittle": get_machine("biglittle-muontrap")},
            # Normalise against the same machine, unprotected.
            baseline_config=get_machine("biglittle-muontrap").with_mode(
                ProtectionMode.UNPROTECTED),
            instructions=600, jobs=1)
        result = campaign.run()
        assert result.has_corun_results
        report = Report.from_campaign_constituents(result)
        assert report.benchmarks == ["mix-pointer-stream:mcf",
                                     "mix-pointer-stream:lbm"]
        rendered = report.render("markdown")
        assert "mix-pointer-stream:lbm" in rendered
        for values in result.per_constituent_normalised().values():
            assert all(value > 0 for value in values.values())
