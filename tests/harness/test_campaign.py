"""Tests for campaign expansion, caching and parallel determinism."""

import json

import pytest

from repro.common.params import ProtectionMode, SystemConfig
from repro.harness.campaign import (
    Campaign,
    ExecutionStats,
    RunSpec,
    derive_seed,
    execute_cells,
    run_cell,
)
from repro.harness.store import ResultStore, result_to_dict
from repro.sim.runner import ExperimentRunner, unprotected_config
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 600

CONFIGS = {"MuonTrap": SystemConfig(mode=ProtectionMode.MUONTRAP)}


def make_campaign(store=None, jobs=1, benchmarks=("hmmer", "povray"),
                  replicates=1):
    return Campaign(list(benchmarks), configs=CONFIGS,
                    baseline_config=unprotected_config(),
                    instructions=INSTRUCTIONS, store=store, jobs=jobs,
                    replicates=replicates)


class TestExpansion:
    def test_cells_cover_the_full_matrix(self):
        campaign = make_campaign(replicates=2)
        cells = campaign.cells()
        # 2 benchmarks x (1 config + baseline) x 2 seeds
        assert len(cells) == 8
        assert len({spec.key() for spec in cells}) == 8
        labels = {spec.label for spec in cells}
        assert labels == {"MuonTrap", "baseline"}

    def test_from_suites_resolves_and_sorts(self):
        campaign = Campaign.from_suites(
            ["swaptions", "blackscholes", "swaptions"], configs=CONFIGS,
            baseline_config=unprotected_config(),
            instructions=INSTRUCTIONS)
        assert campaign.benchmarks == ["blackscholes", "swaptions"]

    def test_replicate_seeds_are_stable_and_distinct(self):
        assert derive_seed(1234, 0) == 1234
        seeds = [derive_seed(1234, replicate) for replicate in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [derive_seed(1234, replicate)
                         for replicate in range(4)]

    def test_baseline_label_collision_rejected(self):
        with pytest.raises(ValueError):
            Campaign(["hmmer"], configs=CONFIGS,
                     baseline_config=unprotected_config(),
                     baseline_label="MuonTrap")

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            Campaign([], configs=CONFIGS)
        with pytest.raises(ValueError):
            Campaign(["hmmer"], configs={})


class TestDeterminism:
    def test_parallel_results_byte_identical_to_sequential(self):
        sequential = make_campaign(jobs=1).run()
        parallel = make_campaign(jobs=2).run()
        assert sequential.runs.keys() == parallel.runs.keys()
        for key, result in sequential.runs.items():
            assert (json.dumps(result_to_dict(result), sort_keys=True)
                    == json.dumps(result_to_dict(parallel.runs[key]),
                                  sort_keys=True))
        assert sequential.geomeans() == parallel.geomeans()

    def test_parallel_and_sequential_stores_identical(self, tmp_path):
        store_seq = ResultStore(tmp_path / "seq")
        store_par = ResultStore(tmp_path / "par")
        make_campaign(store=store_seq, jobs=1).run()
        make_campaign(store=store_par, jobs=2).run()
        seq_keys = list(store_seq.keys())
        assert seq_keys == list(store_par.keys())
        for key in seq_keys:
            assert ((store_seq.root / f"{key}.json").read_text()
                    == (store_par.root / f"{key}.json").read_text())


class TestCaching:
    def test_second_run_serves_everything_from_store(self, tmp_path):
        store = ResultStore(tmp_path)
        first = make_campaign(store=store).run()
        assert first.stats.executed == first.stats.total == 4

        rerun = make_campaign(store=store).run()  # fresh campaign object
        assert rerun.stats.executed == 0
        assert rerun.stats.store_hits == 4
        assert rerun.stats.cached_fraction == 1.0
        assert rerun.geomeans() == first.geomeans()

    def test_in_memory_cache_hits_on_second_run(self, tmp_path):
        campaign = make_campaign()
        campaign.run()
        again = campaign.run()
        assert again.stats.executed == 0
        assert again.stats.memory_hits == 4

    def test_widening_a_sweep_is_incremental(self, tmp_path):
        store = ResultStore(tmp_path)
        make_campaign(store=store, benchmarks=("hmmer",)).run()
        widened = make_campaign(store=store,
                                benchmarks=("hmmer", "povray")).run()
        assert widened.stats.store_hits == 2   # hmmer baseline + MuonTrap
        assert widened.stats.executed == 2     # only the povray cells

    def test_execute_cells_dedups_identical_specs(self):
        spec = RunSpec(profile=get_profile("hmmer"), label="MuonTrap",
                       config=CONFIGS["MuonTrap"],
                       instructions=INSTRUCTIONS, seed=1)
        stats = ExecutionStats()
        results = execute_cells([spec, spec], jobs=1, stats=stats)
        assert stats.executed == 1
        assert results[spec.key()].cycles == run_cell(spec).cycles


class TestNormalisation:
    def test_normalised_matches_cycle_ratio(self):
        result = make_campaign().run()
        series = result.normalised()["MuonTrap"]
        for benchmark in ("hmmer", "povray"):
            baseline = result.result(benchmark, "baseline").cycles
            protected = result.result(benchmark, "MuonTrap").cycles
            assert series[benchmark] == pytest.approx(protected / baseline)
            assert series[benchmark] > 0

    def test_normalised_series_matches_runner_output(self):
        campaign_series = make_campaign().run().normalised_series()
        runner = ExperimentRunner(instructions=INSTRUCTIONS)
        runner_series = runner.normalised_series(
            ["hmmer", "povray"], CONFIGS, unprotected_config())
        assert (campaign_series["MuonTrap"].values
                == runner_series["MuonTrap"].values)


class TestRunnerIntegration:
    def test_runner_uses_store_across_instances(self, tmp_path):
        store = ResultStore(tmp_path)
        first = ExperimentRunner(instructions=INSTRUCTIONS, store=store)
        first.run_benchmark("hmmer", unprotected_config())
        assert len(store) == 1

        second = ExperimentRunner(instructions=INSTRUCTIONS, store=store)
        hits_before = store.hits
        run = second.run_benchmark("hmmer", unprotected_config())
        assert store.hits == hits_before + 1
        assert run.result.cycles > 0

    def test_parallel_runner_matches_sequential(self):
        sequential = ExperimentRunner(instructions=INSTRUCTIONS, jobs=1)
        parallel = ExperimentRunner(instructions=INSTRUCTIONS, jobs=2)
        args = (["hmmer", "povray"], CONFIGS, unprotected_config())
        assert (sequential.normalised_series(*args)["MuonTrap"].values
                == parallel.normalised_series(*args)["MuonTrap"].values)
