"""Tests for the persistent result store."""

import dataclasses
import json

from repro.common.params import ProtectionMode, SystemConfig
from repro.cpu.core import CoreResult
from repro.harness.store import (
    STORE_FSYNC_ENV,
    ResultStore,
    result_digest,
    result_from_dict,
    result_to_dict,
    stable_key,
)
from repro.sim.simulator import SimulationResult
from repro.workloads.profiles import get_profile


def make_result(cycles=12345) -> SimulationResult:
    return SimulationResult(
        benchmark="hmmer", mode="muontrap", cycles=cycles,
        instructions=2000, warmup_cycles=321,
        stats={"l1_hits": 99, "fcache_hits": 42},
        core_results=[CoreResult(core_id=0, committed_instructions=2000,
                                 cycles=cycles, committed_loads=600,
                                 committed_stores=200,
                                 committed_branches=150, mispredictions=9,
                                 squashed_accesses=4, nack_retries=1)])


class TestStableKey:
    def test_same_inputs_same_key(self):
        profile = get_profile("hmmer")
        config = SystemConfig(mode=ProtectionMode.MUONTRAP)
        assert (stable_key(profile, config, 2000, 1234)
                == stable_key(profile, config, 2000, 1234))

    def test_any_input_change_changes_key(self):
        profile = get_profile("hmmer")
        config = SystemConfig(mode=ProtectionMode.MUONTRAP)
        base = stable_key(profile, config, 2000, 1234)
        assert stable_key(get_profile("mcf"), config, 2000, 1234) != base
        assert stable_key(profile, config.with_mode(
            ProtectionMode.UNPROTECTED), 2000, 1234) != base
        assert stable_key(profile, config, 2001, 1234) != base
        assert stable_key(profile, config, 2000, 1235) != base
        assert stable_key(profile, config, 2000, 1234,
                          warmup_fraction=0.5) != base

    def test_profile_content_not_just_name_participates(self):
        profile = get_profile("hmmer")
        tweaked = dataclasses.replace(profile, hot_set_bytes=1024)
        config = SystemConfig(mode=ProtectionMode.MUONTRAP)
        assert (stable_key(profile, config, 2000, 1234)
                != stable_key(tweaked, config, 2000, 1234))


class TestRoundTrip:
    def test_result_survives_serialisation(self):
        result = make_result()
        clone = result_from_dict(json.loads(json.dumps(
            result_to_dict(result))))
        assert clone == result

    def test_store_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        result = make_result()
        store.put("abc123", result, metadata={"label": "MuonTrap"})
        assert "abc123" in store
        assert store.get("abc123") == result
        assert store.metadata("abc123") == {"label": "MuonTrap"}
        assert list(store.keys()) == ["abc123"]

    def test_miss_returns_none_and_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nothere") is None
        assert store.misses == 1
        assert store.hits == 0

    def test_hit_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        store.get("k")
        store.get("k")
        assert store.hits == 2

    def test_corrupt_entry_is_a_miss_and_is_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert store.get("bad") is None
        # Evicted, not skipped: the damage cannot recur on every run.
        assert not (tmp_path / "bad.json").exists()
        assert store.evictions == 1

    def test_stale_version_is_a_miss_but_not_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        path = tmp_path / "k.json"
        payload = json.loads(path.read_text())
        payload["version"] = -1
        path.write_text(json.dumps(payload))
        assert store.get("k") is None
        # Old-version entries are merely skipped — they are not damaged.
        assert path.exists()
        assert store.evictions == 0

    def test_clear_empties_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("a", make_result())
        store.put("b", make_result(cycles=777))
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get("a") is None


class TestIntegrity:
    def test_entries_carry_a_digest_of_the_result_payload(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        payload = json.loads((tmp_path / "k.json").read_text())
        assert payload["sha256"] == result_digest(payload["result"])

    def test_torn_write_is_detected_and_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        path = tmp_path / "k.json"
        text = path.read_text()
        path.write_text(text[:len(text) // 2])
        assert store.get("k") is None
        assert not path.exists()
        assert store.evictions == 1
        # The cell is simply recomputed and re-persisted.
        store.put("k", make_result())
        assert store.get("k") == make_result()

    def test_tampered_result_fails_the_digest_check(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        path = tmp_path / "k.json"
        payload = json.loads(path.read_text())
        payload["result"]["cycles"] += 1  # bit-flip without re-digesting
        path.write_text(json.dumps(payload))
        assert store.get("k") is None
        assert store.evictions == 1

    def test_undecodable_result_is_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        path = tmp_path / "k.json"
        payload = json.loads(path.read_text())
        del payload["result"]["benchmark"]
        payload["sha256"] = result_digest(payload["result"])
        path.write_text(json.dumps(payload))
        assert store.get("k") is None
        assert store.evictions == 1

    def test_fsync_mode_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_FSYNC_ENV, "1")
        store = ResultStore(tmp_path)
        assert store.fsync
        result = make_result()
        store.put("k", result)
        assert store.get("k") == result

    def test_clear_sweeps_stray_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        (tmp_path / ".k.999.0.tmp").write_text("crashed mid-write")
        assert store.clear() == 1
        assert not list(tmp_path.iterdir())
