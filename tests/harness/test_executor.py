"""Tests for the supervised executor layer (retry, quarantine, policy)."""

import json

import pytest

from repro.common.params import ProtectionMode, SystemConfig
from repro.harness import campaign as campaign_module
from repro.harness.campaign import ExecutionStats, RunSpec, execute_cells
from repro.harness.executor import (
    BACKOFF_CAP_SECONDS,
    CELL_TIMEOUT_ENV,
    CellExecutionError,
    DEFAULT_MAX_RETRIES,
    MAX_RETRIES_ENV,
    PoolExecutor,
    SerialExecutor,
    default_cell_timeout,
    default_max_retries,
    env_float,
    retry_backoff,
)
from repro.harness.faults import FAULTS_ENV, reset_fault_plan
from repro.harness.store import result_to_dict
from repro.sim.runner import unprotected_config
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 600


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in (FAULTS_ENV, MAX_RETRIES_ENV, CELL_TIMEOUT_ENV):
        monkeypatch.delenv(name, raising=False)
    reset_fault_plan()
    yield
    reset_fault_plan()


def make_specs(benchmarks=("hmmer", "povray")):
    configs = [("baseline", unprotected_config()),
               ("MuonTrap", SystemConfig(mode=ProtectionMode.MUONTRAP))]
    return [RunSpec(profile=get_profile(benchmark), label=label,
                    config=config, instructions=INSTRUCTIONS, seed=1234)
            for benchmark in benchmarks for label, config in configs]


def dumps(result) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


class TestPolicyDefaults:
    def test_env_float_unset_is_none(self):
        assert env_float(CELL_TIMEOUT_ENV) is None

    def test_env_float_parses_and_validates(self, monkeypatch):
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "2.5")
        assert env_float(CELL_TIMEOUT_ENV) == 2.5
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError, match=CELL_TIMEOUT_ENV):
            env_float(CELL_TIMEOUT_ENV)
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "0")
        with pytest.raises(ValueError, match="greater than"):
            env_float(CELL_TIMEOUT_ENV)

    def test_default_max_retries(self, monkeypatch):
        assert default_max_retries() == DEFAULT_MAX_RETRIES
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        assert default_max_retries() == 5
        monkeypatch.setenv(MAX_RETRIES_ENV, "0")
        assert default_max_retries() == 0

    def test_default_cell_timeout(self, monkeypatch):
        assert default_cell_timeout() is None
        monkeypatch.setenv(CELL_TIMEOUT_ENV, "1.5")
        assert default_cell_timeout() == 1.5

    def test_backoff_is_bounded_and_monotone(self):
        waits = [retry_backoff(attempt) for attempt in range(1, 12)]
        assert waits == sorted(waits)
        assert all(wait <= BACKOFF_CAP_SECONDS for wait in waits)
        assert waits[-1] == BACKOFF_CAP_SECONDS


class _Flaky:
    """A ``run_cell`` stand-in that fails the first ``failures`` calls
    per key, then delegates to the real implementation."""

    def __init__(self, failures: int = 1):
        self.failures = failures
        self.calls = {}
        self.real = campaign_module.run_cell

    def __call__(self, spec):
        key = spec.key()
        self.calls[key] = self.calls.get(key, 0) + 1
        if self.calls[key] <= self.failures:
            raise RuntimeError(f"flaky failure {self.calls[key]}")
        return self.real(spec)


class TestSerialExecutor:
    def run(self, executor, specs):
        completed, failed = {}, []
        stats = ExecutionStats()
        executor.execute(
            [(spec.key(), spec) for spec in specs], stats=stats,
            on_complete=lambda key, spec, result, secs:
                completed.__setitem__(key, result),
            on_failure=failed.append)
        return completed, failed, stats

    def test_transient_failures_are_retried_to_success(self, monkeypatch):
        specs = make_specs(benchmarks=("hmmer",))
        monkeypatch.setattr(campaign_module, "run_cell", _Flaky(failures=1))
        completed, failed, stats = self.run(SerialExecutor(max_retries=2),
                                            specs)
        assert sorted(completed) == sorted(spec.key() for spec in specs)
        assert not failed
        assert stats.retries == len(specs)
        assert stats.failed == 0

    def test_exhausted_retries_quarantine_the_cell(self, monkeypatch):
        specs = make_specs(benchmarks=("hmmer",))
        monkeypatch.setattr(campaign_module, "run_cell", _Flaky(failures=99))
        completed, failed, stats = self.run(SerialExecutor(max_retries=1),
                                            specs)
        assert not completed
        assert len(failed) == len(specs)
        assert stats.failed == len(specs)
        cell = failed[0]
        assert cell.attempts == 2  # initial try + 1 retry
        assert "flaky failure" in cell.error
        assert cell.benchmark == "hmmer"

    def test_zero_retries_fails_fast(self, monkeypatch):
        specs = make_specs(benchmarks=("hmmer",))[:1]
        monkeypatch.setattr(campaign_module, "run_cell", _Flaky(failures=1))
        completed, failed, stats = self.run(SerialExecutor(max_retries=0),
                                            specs)
        assert not completed
        assert len(failed) == 1
        assert stats.retries == 0


class TestPoolExecutor:
    def test_pool_matches_serial_byte_for_byte(self):
        specs = make_specs()
        tasks = [(spec.key(), spec) for spec in specs]
        by_executor = []
        for executor in (SerialExecutor(max_retries=0),
                         PoolExecutor(2, max_retries=0)):
            completed = {}
            executor.execute(tasks, stats=ExecutionStats(),
                             on_complete=lambda key, spec, result, secs:
                                 completed.__setitem__(key, result),
                             on_failure=lambda failure: None)
            by_executor.append(completed)
        serial, pooled = by_executor
        assert serial.keys() == pooled.keys()
        for key in serial:
            assert dumps(serial[key]) == dumps(pooled[key])


class TestExecuteCellsFailurePolicy:
    def test_failures_list_quarantines_without_raising(self, monkeypatch):
        specs = make_specs(benchmarks=("hmmer",))
        monkeypatch.setattr(campaign_module, "run_cell", _Flaky(failures=99))
        failures = []
        results = execute_cells(specs, jobs=1, max_retries=0,
                                failures=failures)
        assert results == {}
        assert len(failures) == len(specs)

    def test_no_failures_list_raises_cell_execution_error(self, monkeypatch):
        specs = make_specs(benchmarks=("hmmer",))[:1]
        monkeypatch.setattr(campaign_module, "run_cell", _Flaky(failures=99))
        with pytest.raises(CellExecutionError) as excinfo:
            execute_cells(specs, jobs=1, max_retries=0)
        assert len(excinfo.value.failures) == 1
        assert "hmmer" in str(excinfo.value)

    def test_mixed_outcome_completes_the_survivors(self, monkeypatch):
        specs = make_specs()
        doomed = specs[0].key()
        real = campaign_module.run_cell

        def selective(spec):
            if spec.key() == doomed:
                raise RuntimeError("permanent fault")
            return real(spec)

        monkeypatch.setattr(campaign_module, "run_cell", selective)
        failures = []
        results = execute_cells(specs, jobs=1, max_retries=1,
                                failures=failures)
        assert doomed not in results
        assert len(results) == len(specs) - 1
        assert [cell.key for cell in failures] == [doomed]
