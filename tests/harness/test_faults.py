"""Tests for the deterministic fault-injection plans (``REPRO_FAULTS``)."""

import pytest

from repro.cpu.core import CoreResult
from repro.harness.faults import (
    FAULTS_ENV,
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    active_fault_plan,
    parse_fault_specs,
    reset_fault_plan,
)
from repro.harness.store import ResultStore
from repro.sim.simulator import SimulationResult


@pytest.fixture(autouse=True)
def _fresh_plan_state(monkeypatch):
    """Isolate every test from the process-wide plan singleton."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_fault_plan()
    yield
    reset_fault_plan()


def make_result() -> SimulationResult:
    return SimulationResult(
        benchmark="hmmer", mode="muontrap", cycles=4242,
        instructions=600, warmup_cycles=21, stats={},
        core_results=[CoreResult(core_id=0, committed_instructions=600,
                                 cycles=4242, committed_loads=200,
                                 committed_stores=80,
                                 committed_branches=60, mispredictions=3,
                                 squashed_accesses=1, nack_retries=0)])


class TestParse:
    def test_single_clause_defaults_to_transient(self):
        specs = parse_fault_specs("exc:0.5:7")
        assert specs == (FaultSpec(kind="exc", rate=0.5, seed=7,
                                   attempts=1),)

    def test_attempts_field_is_honoured(self):
        (spec,) = parse_fault_specs("kill:1.0:3:99")
        assert spec.kind == "kill"
        assert spec.attempts == 99

    def test_multiple_clauses_and_whitespace(self):
        specs = parse_fault_specs(" exc:0.5:7 , hang:0.1:9 ,")
        assert [spec.kind for spec in specs] == ["exc", "hang"]

    def test_empty_input_is_no_plan(self):
        assert parse_fault_specs("") == ()

    @pytest.mark.parametrize("raw", [
        "exc:0.5",               # too few fields
        "exc:0.5:7:2:9",         # too many fields
        "meteor:0.5:7",          # unknown kind
        "exc:1.5:7",             # rate out of range
        "exc:-0.1:7",            # rate out of range
        "exc:lots:7",            # non-numeric rate
        "exc:0.5:many",          # non-numeric seed
        "exc:0.5:7:0",           # attempts below 1
    ])
    def test_malformed_specs_are_rejected(self, raw):
        with pytest.raises(FaultSpecError):
            parse_fault_specs(raw)


class TestDecide:
    KEYS = [f"cell-{index}" for index in range(64)]

    def test_decisions_are_pure_functions_of_seed_kind_key(self):
        plan = FaultPlan(parse_fault_specs("exc:0.5:7"))
        first = [plan.decide("exc", key) for key in self.KEYS]
        again = [plan.decide("exc", key) for key in self.KEYS]
        assert first == again
        assert any(first) and not all(first)  # rate 0.5 splits the keys

    def test_rate_bounds(self):
        never = FaultPlan(parse_fault_specs("exc:0.0:7"))
        always = FaultPlan(parse_fault_specs("exc:1.0:7"))
        assert not any(never.decide("exc", key) for key in self.KEYS)
        assert all(always.decide("exc", key) for key in self.KEYS)

    def test_attempt_gating_makes_faults_transient(self):
        plan = FaultPlan(parse_fault_specs("exc:1.0:7"))
        assert plan.decide("exc", "k", attempt=0)
        assert not plan.decide("exc", "k", attempt=1)
        persistent = FaultPlan(parse_fault_specs("exc:1.0:7:3"))
        assert persistent.decide("exc", "k", attempt=2)
        assert not persistent.decide("exc", "k", attempt=3)

    def test_kinds_are_independent(self):
        plan = FaultPlan(parse_fault_specs("exc:1.0:7"))
        assert not plan.decide("kill", "k")

    def test_seed_moves_the_faults(self):
        a = FaultPlan(parse_fault_specs("exc:0.5:1"))
        b = FaultPlan(parse_fault_specs("exc:0.5:2"))
        assert ([a.decide("exc", key) for key in self.KEYS]
                != [b.decide("exc", key) for key in self.KEYS])


class TestActivePlan:
    def test_unset_means_no_plan(self):
        assert active_fault_plan() is None

    def test_plan_follows_the_environment(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "exc:0.5:7")
        plan = active_fault_plan()
        assert plan is not None
        assert plan.specs[0].kind == "exc"
        # Unchanged setting: same object (no rebuild per call).
        assert active_fault_plan() is plan
        monkeypatch.setenv(FAULTS_ENV, "kill:1.0:3")
        assert active_fault_plan().specs[0].kind == "kill"

    def test_malformed_environment_is_reported(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "bogus")
        with pytest.raises(FaultSpecError):
            active_fault_plan()


class TestApplyWorkerFaults:
    def test_exc_fault_raises_injected_fault(self):
        plan = FaultPlan(parse_fault_specs("exc:1.0:7"))
        with pytest.raises(InjectedFault):
            plan.apply_worker_faults("k", 0, kinds=("exc",))

    def test_retry_attempt_passes_clean(self):
        plan = FaultPlan(parse_fault_specs("exc:1.0:7"))
        plan.apply_worker_faults("k", 1, kinds=("exc",))  # no raise

    def test_kind_restriction_keeps_serial_callers_alive(self):
        # A kill fault outside the requested kinds must not fire: the
        # serial executor runs in the caller's process, where os._exit
        # would take down the campaign itself.
        plan = FaultPlan(parse_fault_specs("kill:1.0:5,hang:1.0:5"))
        plan.apply_worker_faults("k", 0, kinds=("exc",))  # returns


class TestCorruptStoreEntry:
    def test_corrupts_entry_and_store_evicts_it(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k", make_result())
        plan = FaultPlan(parse_fault_specs("corrupt:1.0:1"))
        assert plan.corrupt_store_entry(store, "k")
        # The torn entry fails the integrity check, is evicted (deleted)
        # and reads as a miss — one recomputation, never a wrong result.
        assert store.get("k") is None
        assert store.evictions == 1
        assert not (tmp_path / "k.json").exists()

    def test_rate_zero_leaves_entry_intact(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result()
        store.put("k", result)
        plan = FaultPlan(parse_fault_specs("corrupt:0.0:1"))
        assert not plan.corrupt_store_entry(store, "k")
        assert store.get("k") == result
