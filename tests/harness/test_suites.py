"""Tests for named benchmark-suite resolution."""

import pytest

from repro.harness.suites import (
    SPEC_FP,
    SPEC_INT,
    UnknownSuiteError,
    register_suite,
    resolve_suite,
    resolve_suites,
    suite_names,
    unregister_suite,
)
from repro.workloads.profiles import PARSEC_PROFILES, SPEC2006_PROFILES


class TestBuiltinSuites:
    def test_spec_split_covers_all_26_workloads(self):
        assert sorted(SPEC_INT + SPEC_FP) == sorted(SPEC2006_PROFILES)
        assert not set(SPEC_INT) & set(SPEC_FP)

    def test_spec_all_and_parsec(self):
        assert resolve_suite("spec_all") == sorted(SPEC2006_PROFILES)
        assert resolve_suite("parsec") == sorted(PARSEC_PROFILES)
        assert resolve_suite("mixed") == sorted(
            list(SPEC2006_PROFILES) + list(PARSEC_PROFILES))

    def test_resolution_is_sorted(self):
        resolved = resolve_suite("spec_int")
        assert resolved == sorted(resolved)

    def test_builtin_names_listed(self):
        names = suite_names()
        for name in ("spec_int", "spec_fp", "spec_all", "parsec", "mixed"):
            assert name in names


class TestComposition:
    def test_suites_and_benchmarks_mix_with_dedup(self):
        resolved = resolve_suites(["spec_int", "mcf", "hmmer", "spec_int"])
        assert resolved == sorted(set(SPEC_INT) | {"hmmer"})
        assert resolved.count("mcf") == 1

    def test_single_benchmark_is_a_suite(self):
        assert resolve_suite("lbm") == ["lbm"]

    def test_unknown_name_raises_with_suite_list(self):
        with pytest.raises(UnknownSuiteError, match="no_such_suite"):
            resolve_suites(["spec_int", "no_such_suite"])
        with pytest.raises(UnknownSuiteError, match="spec_int"):
            resolve_suite("perlbench")  # not among the paper's 26


class TestUserSuites:
    def test_register_resolves_members_eagerly(self):
        try:
            members = register_suite("pointer_chasers",
                                     ["mcf", "omnetpp", "astar", "mcf"])
            assert members == ["astar", "mcf", "omnetpp"]
            assert resolve_suite("pointer_chasers") == members
            assert "pointer_chasers" in suite_names()
        finally:
            unregister_suite("pointer_chasers")
        with pytest.raises(UnknownSuiteError):
            resolve_suite("pointer_chasers")

    def test_suites_compose(self):
        try:
            register_suite("everything", ["spec_all", "parsec"])
            assert resolve_suite("everything") == resolve_suite("mixed")
        finally:
            unregister_suite("everything")

    def test_register_rejects_unknown_members(self):
        with pytest.raises(UnknownSuiteError):
            register_suite("broken", ["mcf", "not_a_benchmark"])
        assert "broken" not in suite_names()
