"""Tests for the pluggable store backends (JSON directory vs SQLite-WAL).

Covers the backend-selection path (``open_store`` argument > environment
> layout auto-detection), the shared integrity discipline applied
through both backends, ``migrate_store`` in both directions, and —
the reason the SQLite backend exists — multi-process behaviour: two
processes sharing one store root writing overlapping keys lose nothing,
and killing a writer mid-write costs at most the one in-flight entry.
"""

import json
import os
import signal
import sqlite3
import subprocess
import sys
import textwrap

import pytest

from repro.harness.store import (
    STORE_BACKEND_ENV,
    JsonResultStore,
    ResultStore,
    SqliteResultStore,
    migrate_store,
    open_store,
    result_digest,
    store_backend_from_env,
)
from tests.harness.test_store import make_result

BACKENDS = ["json", "sqlite"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(backend, tmp_path):
    return open_store(tmp_path / "results", backend=backend)


def tamper(store, key, mutate):
    """Modify a stored entry's payload in place, bypassing the digest."""
    if isinstance(store, SqliteResultStore):
        with sqlite3.connect(store.path) as conn:
            row = conn.execute(
                "SELECT version, sha256, metadata, result FROM results "
                "WHERE key = ?", (key,)).fetchone()
            payload = {"version": row[0], "key": key, "sha256": row[1],
                       "metadata": json.loads(row[2]),
                       "result": json.loads(row[3])}
            mutate(payload)
            conn.execute(
                "UPDATE results SET version = ?, sha256 = ?, result = ? "
                "WHERE key = ?",
                (payload["version"], payload["sha256"],
                 json.dumps(payload["result"]), key))
    else:
        path = store._path(key)
        payload = json.loads(path.read_text())
        mutate(payload)
        path.write_text(json.dumps(payload))


class TestSelection:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV, "sqlite")
        assert isinstance(open_store(tmp_path, backend="json"),
                          JsonResultStore)

    def test_environment_selects_backend(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV, "sqlite")
        assert isinstance(open_store(tmp_path), SqliteResultStore)

    def test_default_is_json(self, tmp_path):
        assert isinstance(open_store(tmp_path), JsonResultStore)

    def test_sqlite_layout_is_auto_detected(self, tmp_path):
        first = open_store(tmp_path, backend="sqlite")
        first.put("k", make_result())
        # A later open with no hints must find the same entries.
        reopened = open_store(tmp_path)
        assert isinstance(reopened, SqliteResultStore)
        assert reopened.get("k") == make_result()

    def test_db_file_path_is_auto_detected(self, tmp_path):
        store = open_store(tmp_path / "cells.sqlite3")
        assert isinstance(store, SqliteResultStore)
        store.put("k", make_result())
        assert (tmp_path / "cells.sqlite3").is_file()

    def test_invalid_environment_value_rejected(self, monkeypatch):
        monkeypatch.setenv(STORE_BACKEND_ENV, "postgres")
        with pytest.raises(ValueError, match="REPRO_STORE_BACKEND"):
            store_backend_from_env()

    def test_result_store_alias_is_json_backend(self, tmp_path):
        assert isinstance(ResultStore(tmp_path), JsonResultStore)


class TestSharedDiscipline:
    """Both backends enforce the same get/put integrity contract."""

    def test_round_trip_with_metadata(self, store):
        result = make_result()
        store.put("abc", result, metadata={"label": "MuonTrap"})
        assert "abc" in store
        assert len(store) == 1
        assert store.get("abc") == result
        assert store.metadata("abc") == {"label": "MuonTrap"}
        assert list(store.keys()) == ["abc"]

    def test_miss_and_hit_counters(self, store):
        assert store.get("nothere") is None
        store.put("k", make_result())
        store.get("k")
        assert (store.hits, store.misses) == (1, 1)

    def test_tampered_result_is_evicted(self, store):
        store.put("k", make_result())

        def flip(payload):
            payload["result"]["cycles"] += 1

        tamper(store, "k", flip)
        assert store.get("k") is None
        assert store.evictions == 1
        assert "k" not in store

    def test_stale_version_is_skipped_not_evicted(self, store):
        store.put("k", make_result())

        def age(payload):
            payload["version"] = -1

        tamper(store, "k", age)
        assert store.get("k") is None
        assert store.evictions == 0
        assert "k" in store  # still present, merely ignored

    def test_clear_empties_and_counts(self, store):
        store.put("a", make_result())
        store.put("b", make_result(cycles=777))
        assert store.clear() == 2
        assert len(store) == 0

    def test_describe_names_backend_and_location(self, store, backend):
        assert store.describe().startswith(f"{backend}:")

    def test_overwrite_replaces_entry(self, store):
        store.put("k", make_result(cycles=1))
        store.put("k", make_result(cycles=2))
        assert store.get("k") == make_result(cycles=2)
        assert len(store) == 1


class TestSqliteSpecifics:
    def test_wal_mode_is_persistent(self, tmp_path):
        store = open_store(tmp_path, backend="sqlite")
        store.put("k", make_result())
        with sqlite3.connect(store.path) as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_unreadable_database_reports_corrupt_entry(self, tmp_path):
        store = open_store(tmp_path / "db.sqlite3", backend="sqlite")
        store.put("k", make_result())
        # Garbage where the row's JSON should be => CORRUPT => evicted.
        with sqlite3.connect(store.path) as conn:
            conn.execute("UPDATE results SET result = '{broken'")
        assert store.get("k") is None
        assert store.evictions == 1


class TestMigrate:
    def test_json_to_sqlite_and_back(self, tmp_path):
        source = open_store(tmp_path / "a", backend="json")
        source.put("k1", make_result(cycles=1), metadata={"label": "x"})
        source.put("k2", make_result(cycles=2))
        middle = open_store(tmp_path / "b", backend="sqlite")
        assert migrate_store(source, middle) == (2, 0)
        assert middle.get("k1") == make_result(cycles=1)
        assert middle.metadata("k1") == {"label": "x"}
        dest = open_store(tmp_path / "c", backend="json")
        assert migrate_store(middle, dest) == (2, 0)
        assert dest.get("k2") == make_result(cycles=2)

    def test_tampered_entries_are_skipped_not_copied(self, tmp_path,
                                                     backend):
        source = open_store(tmp_path / "src", backend=backend)
        source.put("good", make_result())
        source.put("bad", make_result(cycles=9))

        def flip(payload):
            payload["result"]["cycles"] += 1

        tamper(source, "bad", flip)
        dest = open_store(tmp_path / "dst",
                          backend="json" if backend == "sqlite"
                          else "sqlite")
        assert migrate_store(source, dest) == (1, 1)
        assert dest.get("good") == make_result()
        assert "bad" not in dest

    def test_migrated_digests_verify_in_the_destination(self, tmp_path):
        source = open_store(tmp_path / "src", backend="json")
        source.put("k", make_result())
        dest = open_store(tmp_path / "dst", backend="sqlite")
        migrate_store(source, dest)
        entry = dest.load_entry("k")
        assert entry["sha256"] == result_digest(entry["result"])


#: Worker for the multi-process tests: writes KEYS entries to the shared
#: store, printing each key after its put() returns (= is committed).
_WRITER = textwrap.dedent("""\
    import sys
    from repro.harness.store import open_store
    from tests.harness.test_store import make_result

    root, backend, start, count = (sys.argv[1], sys.argv[2],
                                   int(sys.argv[3]), int(sys.argv[4]))
    store = open_store(root, backend=backend)
    for index in range(start, start + count):
        store.put(f"k{index:03d}", make_result(cycles=index),
                  metadata={"index": index})
        print(f"k{index:03d}", flush=True)
""")


def _worker_env():
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src"), root,
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return env


class TestConcurrentAccess:
    def test_two_processes_overlapping_keys_lose_nothing(self, backend,
                                                         tmp_path):
        """Two writers share one root and an overlapping key range; every
        key must afterwards hold a readable, digest-clean entry."""
        root = str(tmp_path / "shared")
        script = tmp_path / "writer.py"
        script.write_text(_WRITER)
        # Ranges [0, 30) and [20, 50): keys 20-29 are contended.
        procs = [subprocess.Popen(
            [sys.executable, str(script), root, backend, str(start), "30"],
            stdout=subprocess.PIPE, env=_worker_env(), text=True)
            for start in (0, 20)]
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out
            assert len(out.split()) == 30
        store = open_store(root, backend=backend)
        for index in range(50):
            assert store.get(f"k{index:03d}") == make_result(cycles=index)
        assert store.evictions == 0

    def test_killed_writer_costs_at_most_one_entry(self, backend,
                                                   tmp_path):
        """SIGKILL mid-write: every key the child reported committed must
        be readable afterwards — the crash loses only in-flight work."""
        root = str(tmp_path / "shared")
        script = tmp_path / "writer.py"
        script.write_text(_WRITER)
        proc = subprocess.Popen(
            [sys.executable, str(script), root, backend, "0", "100000"],
            stdout=subprocess.PIPE, env=_worker_env(), text=True)
        committed = []
        for line in proc.stdout:
            committed.append(line.strip())
            if len(committed) >= 10:
                break
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        proc.stdout.close()
        assert len(committed) >= 10
        store = open_store(root, backend=backend)
        for key in committed:
            index = int(key[1:])
            assert store.get(key) == make_result(cycles=index), \
                f"committed entry {key} lost by the crash"
        # Keys beyond the reported ones are either commits the parent
        # never got to read (whole, correct) or the single in-flight
        # write the kill interrupted (evicted on read, never silently
        # wrong).  "At most one recompute" = at most one unreadable.
        extra = sorted(set(store.keys()) - set(committed))
        unreadable = 0
        for key in extra:
            value = store.get(key)
            if value is None:
                unreadable += 1
            else:
                assert value == make_result(cycles=int(key[1:]))
        assert unreadable <= 1
