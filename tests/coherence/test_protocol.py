"""Tests for the MESI coherence controller, bus and snoop filter."""

import itertools
import random

import pytest

from repro.caches.base_cache import SetAssociativeCache
from repro.caches.hierarchy import NonSpeculativeHierarchy
from repro.coherence.bus import CoherenceBus
from repro.coherence.protocol import (
    MESI_TRANSITIONS,
    CoherenceController,
    MesiEvent,
    next_state,
)
from repro.coherence.snoop_filter import SnoopFilter
from repro.coherence.states import CoherenceState, E, I, M, S
from repro.common.params import (
    CacheConfig,
    ProtectionMode,
    SystemConfig,
    corun_system_config,
)
from repro.memory.main_memory import MainMemory


def build_two_core_setup():
    bus = CoherenceBus()
    l1s = {}
    for core in range(2):
        l1s[core] = SetAssociativeCache(CacheConfig(
            name=f"l1d{core}", size_bytes=4096, associativity=2,
            hit_latency=2))
        bus.register_private_cache(core, l1s[core])
    l2 = SetAssociativeCache(CacheConfig(name="l2", size_bytes=64 * 1024,
                                         associativity=8, hit_latency=20))
    memory = MainMemory()
    controller = CoherenceController(bus, l2, memory)
    return bus, l1s, l2, memory, controller


class TestStates:
    def test_state_predicates(self):
        assert M.can_write and M.is_private
        assert E.is_private and not E.can_write
        assert S.can_read and not S.is_private
        assert not I.is_valid


class TestReadPath:
    def test_cold_read_goes_to_memory_and_grants_exclusive(self):
        _, _, l2, memory, controller = build_two_core_setup()
        outcome = controller.read(0, 0x1000, now=0)
        assert outcome.hit_level == "memory"
        assert outcome.granted_state is E
        assert outcome.exclusive_available
        assert memory.total_reads == 1
        assert l2.contains(0x1000)

    def test_l2_hit_is_cheaper_than_memory(self):
        _, _, _, _, controller = build_two_core_setup()
        cold = controller.read(0, 0x2000, now=0)
        warm = controller.read(1, 0x2000, now=100)
        assert warm.hit_level == "l2"
        assert warm.latency < cold.latency

    def test_peer_modified_copy_is_downgraded(self):
        _, l1s, l2, _, controller = build_two_core_setup()
        l1s[0].fill(0x3000, M, now=0, dirty=True)
        outcome = controller.read(1, 0x3000, now=10)
        assert outcome.hit_level == "peer"
        assert l1s[0].state_of(0x3000) is S
        assert l2.contains(0x3000)

    def test_speculative_read_nacked_under_protection(self):
        """Reduced coherency speculation (section 4.5)."""
        bus, l1s, _, _, controller = build_two_core_setup()
        l1s[0].fill(0x3000, E, now=0)
        outcome = controller.read(1, 0x3000, now=10, speculative=True,
                                  protect_coherence=True)
        assert outcome.nacked
        assert not outcome.served
        assert l1s[0].state_of(0x3000) is E  # untouched
        assert bus.nacks == 1
        # The same request succeeds once it is non-speculative.
        retry = controller.read(1, 0x3000, now=20, speculative=False,
                                protect_coherence=True)
        assert retry.served
        assert l1s[0].state_of(0x3000) is S

    def test_filter_fill_without_l2_install(self):
        """The filter-cache fill path leaves no trace in the L2."""
        _, _, l2, memory, controller = build_two_core_setup()
        outcome = controller.read(0, 0x7000, now=0, speculative=True,
                                  fill_l2=False)
        assert outcome.hit_level == "memory"
        assert not l2.contains(0x7000)
        assert memory.total_reads == 1


class TestWritePath:
    def test_write_invalidates_other_copies(self):
        _, l1s, _, _, controller = build_two_core_setup()
        l1s[1].fill(0x4000, S, now=0)
        outcome = controller.write(0, 0x4000, now=10)
        assert outcome.granted_state is M
        assert l1s[1].state_of(0x4000) is I

    def test_already_private_write_is_free(self):
        _, _, _, _, controller = build_two_core_setup()
        outcome = controller.write(0, 0x5000, now=0, already_private=True)
        assert outcome.latency == 0

    def test_filter_broadcast_reaches_registered_listeners(self):
        bus, _, _, _, controller = build_two_core_setup()
        invalidated = []
        bus.register_filter_listener(1, invalidated.append)
        outcome = controller.write(0, 0x6000, now=0,
                                   broadcast_to_filters=True)
        assert outcome.triggered_filter_broadcast
        assert invalidated == [0x6000]
        assert bus.filter_broadcasts == 1

    def test_asynchronous_upgrade_invalidates_peers_and_filters(self):
        bus, l1s, _, _, controller = build_two_core_setup()
        invalidated = []
        bus.register_filter_listener(1, invalidated.append)
        l1s[1].fill(0x8000, S, now=0)
        controller.asynchronous_exclusive_upgrade(0, 0x8000, now=10)
        assert l1s[1].state_of(0x8000) is I
        assert invalidated == [0x8000]


class TestMesiTransitionTable:
    """Exhaustive enumeration of the (state, event) transition table."""

    def test_table_is_total(self):
        """Every (state, event) pair has exactly one entry."""
        expected = set(itertools.product(CoherenceState, MesiEvent))
        assert set(MESI_TRANSITIONS) == expected
        assert len(MESI_TRANSITIONS) == len(CoherenceState) * len(MesiEvent)

    @pytest.mark.parametrize("state,event",
                             list(itertools.product(CoherenceState,
                                                    MesiEvent)),
                             ids=lambda value: getattr(value, "value", value))
    def test_every_transition_preserves_protocol_invariants(self, state,
                                                            event):
        """Check each of the 20 transitions against the MESI axioms."""
        result = next_state(state, event)
        # Remote writes and evictions always end in Invalid.
        if event in (MesiEvent.REMOTE_WRITE, MesiEvent.EVICT):
            assert result is I
        # A remote read never leaves a private (M/E) copy behind.
        if event is MesiEvent.REMOTE_READ and state.is_valid:
            assert not result.is_private
        # A local write always ends with write permission.
        if event is MesiEvent.LOCAL_WRITE:
            assert result is M
        # A local read never loses the line, and never *gains* write
        # permission (only a write can).
        if event is MesiEvent.LOCAL_READ:
            assert result.is_valid
            assert result.can_write == (state is M)
        # Invalid is absorbing for remote events.
        if state is I and event in (MesiEvent.REMOTE_READ,
                                    MesiEvent.REMOTE_WRITE):
            assert result is I

    def test_silent_upgrade_only_from_exclusive(self):
        """E -> M needs no bus transaction; S -> M does (invalidation)."""
        assert next_state(E, MesiEvent.LOCAL_WRITE) is M
        assert next_state(S, MesiEvent.LOCAL_WRITE) is M
        # The controller realises the S -> M edge through an invalidating
        # write; the E -> M edge through the already_private fast path.
        _, l1s, _, _, controller = build_two_core_setup()
        l1s[0].fill(0x9000, E, now=0)
        outcome = controller.write(0, 0x9000, now=1, already_private=True)
        assert outcome.latency == 0

    def test_controller_read_realises_remote_read_edges(self):
        """M/E owners end Shared after a peer read, as the table says."""
        for owner_state in (M, E):
            _, l1s, _, _, controller = build_two_core_setup()
            l1s[0].fill(0x3000, owner_state, now=0,
                        dirty=owner_state is M)
            controller.read(1, 0x3000, now=10)
            assert l1s[0].state_of(0x3000) is next_state(
                owner_state, MesiEvent.REMOTE_READ)

    def test_controller_write_realises_remote_write_edges(self):
        """Any peer copy ends Invalid after a write, as the table says."""
        for peer_state in (M, E, S):
            _, l1s, _, _, controller = build_two_core_setup()
            l1s[1].fill(0x4000, peer_state, now=0, dirty=peer_state is M)
            controller.write(0, 0x4000, now=10)
            assert l1s[1].state_of(0x4000) is next_state(
                peer_state, MesiEvent.REMOTE_WRITE)


def _private_holders(hierarchy, config, line_address):
    """Cores holding the line in a bus-visible private cache, with states."""
    holders = {}
    for core_id in range(config.num_cores):
        states = []
        caches = [hierarchy.l1d(core_id)]
        private_l2 = hierarchy.private_l2(core_id)
        if private_l2 is not None:
            caches.append(private_l2)
        for cache in caches:
            line = cache.probe(line_address)
            if line is not None and line.valid:
                states.append(line.state)
        if states:
            holders[core_id] = states
    return holders


def _assert_coherence_invariants(hierarchy, config, lines, context):
    """Single-writer + conservative-directory invariants for every line."""
    for line_address in lines:
        holders = _private_holders(hierarchy, config, line_address)
        private_owners = [core for core, states in holders.items()
                          if any(state.is_private for state in states)]
        # Single-writer: a core with an M/E copy is the *only* core with
        # any valid copy.
        if private_owners:
            assert len(holders) == 1, (
                f"{context}: line {line_address:#x} held privately by "
                f"{private_owners} but also present in {sorted(holders)}")
        # Conservative directory: every actual holder is tracked.
        tracked = hierarchy.snoop_filter._sharers.get(line_address, set())
        assert set(holders) <= tracked, (
            f"{context}: line {line_address:#x} held by {sorted(holders)} "
            f"but snoop filter tracks only {sorted(tracked)}")
        assert hierarchy.snoop_filter.precise


class TestRandomInterleavingInvariants:
    """Sharer-set and single-writer invariants under random access storms.

    Drives a real multi-core hierarchy (both topologies: shared-L2 and
    private-L2) with a seed-pinned random interleaving of loads, stores,
    committed stores and commit-fills from random cores over a small,
    conflict-heavy line pool, checking the MESI invariants and the snoop
    filter's conservative-superset property after every step.
    """

    LINES = [0x10000 + index * 64 for index in range(24)]
    STEPS = 300

    @pytest.mark.parametrize("topology", ["shared-l2", "private-l2"])
    @pytest.mark.parametrize("seed", [3, 17])
    def test_invariants_hold_under_random_interleaving(self, topology, seed):
        config = (corun_system_config(ProtectionMode.UNPROTECTED,
                                      num_cores=4)
                  if topology == "private-l2"
                  else SystemConfig(mode=ProtectionMode.UNPROTECTED,
                                    num_cores=4))
        hierarchy = NonSpeculativeHierarchy(config)
        rng = random.Random(seed)
        now = 0
        for step in range(self.STEPS):
            now += rng.randrange(1, 40)
            core = rng.randrange(config.num_cores)
            line = rng.choice(self.LINES)
            action = rng.randrange(4)
            if action == 0:
                hierarchy.access(core, line, now)
            elif action == 1:
                hierarchy.access(core, line, now, is_store=True)
            elif action == 2:
                hierarchy.commit_store(core, line, now)
            else:
                hierarchy.commit_fill_l1(core, line, now,
                                         exclusive=rng.random() < 0.5)
            _assert_coherence_invariants(
                hierarchy, config, self.LINES,
                f"{topology}/seed={seed}/step={step}")

    def test_snoop_filter_skips_only_provably_empty_snoops(self):
        """Filtered snoops never change what a full probe would have found."""
        config = SystemConfig(mode=ProtectionMode.UNPROTECTED, num_cores=4)
        hierarchy = NonSpeculativeHierarchy(config)
        rng = random.Random(99)
        now = 0
        for _ in range(200):
            now += rng.randrange(1, 30)
            core = rng.randrange(config.num_cores)
            line = rng.choice(self.LINES)
            is_store = rng.random() < 0.4
            hierarchy.access(core, line, now, is_store=is_store)
            # Compare the filtered snoop against a ground-truth probe of
            # every cache.
            for probe_line in rng.sample(self.LINES, 4):
                requester = rng.randrange(config.num_cores)
                filtered = hierarchy.bus.snoop(requester, probe_line)
                truth = _private_holders(hierarchy, config, probe_line)
                truth.pop(requester, None)
                found = set(filtered.sharers)
                if filtered.dirty_owner is not None:
                    found.add(filtered.dirty_owner)
                if filtered.exclusive_owner is not None:
                    found.add(filtered.exclusive_owner)
                assert found == set(truth), (
                    f"snoop of {probe_line:#x} by {requester} found "
                    f"{sorted(found)}, ground truth {sorted(truth)}")
        assert hierarchy.snoop_filter.filtered_snoops > 0


class TestSnoopFilter:
    def test_tracks_sharers(self):
        snoop_filter = SnoopFilter()
        snoop_filter.record_fill(0, 0x100)
        snoop_filter.record_fill(1, 0x100)
        assert snoop_filter.sharers_of(0x100) == {0, 1}
        assert snoop_filter.needs_snoop(0, 0x100)
        assert snoop_filter.multicast_targets(0, 0x100) == {1}
        snoop_filter.record_eviction(1, 0x100)
        assert not snoop_filter.needs_snoop(0, 0x100)

    def test_capacity_eviction(self):
        snoop_filter = SnoopFilter(max_entries=2)
        for line in (0x100, 0x200, 0x300):
            snoop_filter.record_fill(0, line)
        assert len(snoop_filter) <= 2
