"""Tests for the MESI coherence controller, bus and snoop filter."""

import pytest

from repro.caches.base_cache import SetAssociativeCache
from repro.coherence.bus import CoherenceBus
from repro.coherence.protocol import CoherenceController
from repro.coherence.snoop_filter import SnoopFilter
from repro.coherence.states import CoherenceState, E, I, M, S
from repro.common.params import CacheConfig
from repro.memory.main_memory import MainMemory


def build_two_core_setup():
    bus = CoherenceBus()
    l1s = {}
    for core in range(2):
        l1s[core] = SetAssociativeCache(CacheConfig(
            name=f"l1d{core}", size_bytes=4096, associativity=2,
            hit_latency=2))
        bus.register_private_cache(core, l1s[core])
    l2 = SetAssociativeCache(CacheConfig(name="l2", size_bytes=64 * 1024,
                                         associativity=8, hit_latency=20))
    memory = MainMemory()
    controller = CoherenceController(bus, l2, memory)
    return bus, l1s, l2, memory, controller


class TestStates:
    def test_state_predicates(self):
        assert M.can_write and M.is_private
        assert E.is_private and not E.can_write
        assert S.can_read and not S.is_private
        assert not I.is_valid


class TestReadPath:
    def test_cold_read_goes_to_memory_and_grants_exclusive(self):
        _, _, l2, memory, controller = build_two_core_setup()
        outcome = controller.read(0, 0x1000, now=0)
        assert outcome.hit_level == "memory"
        assert outcome.granted_state is E
        assert outcome.exclusive_available
        assert memory.total_reads == 1
        assert l2.contains(0x1000)

    def test_l2_hit_is_cheaper_than_memory(self):
        _, _, _, _, controller = build_two_core_setup()
        cold = controller.read(0, 0x2000, now=0)
        warm = controller.read(1, 0x2000, now=100)
        assert warm.hit_level == "l2"
        assert warm.latency < cold.latency

    def test_peer_modified_copy_is_downgraded(self):
        _, l1s, l2, _, controller = build_two_core_setup()
        l1s[0].fill(0x3000, M, now=0, dirty=True)
        outcome = controller.read(1, 0x3000, now=10)
        assert outcome.hit_level == "peer"
        assert l1s[0].state_of(0x3000) is S
        assert l2.contains(0x3000)

    def test_speculative_read_nacked_under_protection(self):
        """Reduced coherency speculation (section 4.5)."""
        bus, l1s, _, _, controller = build_two_core_setup()
        l1s[0].fill(0x3000, E, now=0)
        outcome = controller.read(1, 0x3000, now=10, speculative=True,
                                  protect_coherence=True)
        assert outcome.nacked
        assert not outcome.served
        assert l1s[0].state_of(0x3000) is E  # untouched
        assert bus.nacks == 1
        # The same request succeeds once it is non-speculative.
        retry = controller.read(1, 0x3000, now=20, speculative=False,
                                protect_coherence=True)
        assert retry.served
        assert l1s[0].state_of(0x3000) is S

    def test_filter_fill_without_l2_install(self):
        """The filter-cache fill path leaves no trace in the L2."""
        _, _, l2, memory, controller = build_two_core_setup()
        outcome = controller.read(0, 0x7000, now=0, speculative=True,
                                  fill_l2=False)
        assert outcome.hit_level == "memory"
        assert not l2.contains(0x7000)
        assert memory.total_reads == 1


class TestWritePath:
    def test_write_invalidates_other_copies(self):
        _, l1s, _, _, controller = build_two_core_setup()
        l1s[1].fill(0x4000, S, now=0)
        outcome = controller.write(0, 0x4000, now=10)
        assert outcome.granted_state is M
        assert l1s[1].state_of(0x4000) is I

    def test_already_private_write_is_free(self):
        _, _, _, _, controller = build_two_core_setup()
        outcome = controller.write(0, 0x5000, now=0, already_private=True)
        assert outcome.latency == 0

    def test_filter_broadcast_reaches_registered_listeners(self):
        bus, _, _, _, controller = build_two_core_setup()
        invalidated = []
        bus.register_filter_listener(1, invalidated.append)
        outcome = controller.write(0, 0x6000, now=0,
                                   broadcast_to_filters=True)
        assert outcome.triggered_filter_broadcast
        assert invalidated == [0x6000]
        assert bus.filter_broadcasts == 1

    def test_asynchronous_upgrade_invalidates_peers_and_filters(self):
        bus, l1s, _, _, controller = build_two_core_setup()
        invalidated = []
        bus.register_filter_listener(1, invalidated.append)
        l1s[1].fill(0x8000, S, now=0)
        controller.asynchronous_exclusive_upgrade(0, 0x8000, now=10)
        assert l1s[1].state_of(0x8000) is I
        assert invalidated == [0x8000]


class TestSnoopFilter:
    def test_tracks_sharers(self):
        snoop_filter = SnoopFilter()
        snoop_filter.record_fill(0, 0x100)
        snoop_filter.record_fill(1, 0x100)
        assert snoop_filter.sharers_of(0x100) == {0, 1}
        assert snoop_filter.needs_snoop(0, 0x100)
        assert snoop_filter.multicast_targets(0, 0x100) == {1}
        snoop_filter.record_eviction(1, 0x100)
        assert not snoop_filter.needs_snoop(0, 0x100)

    def test_capacity_eviction(self):
        snoop_filter = SnoopFilter(max_entries=2)
        for line in (0x100, 0x200, 0x300):
            snoop_filter.record_fill(0, line)
        assert len(snoop_filter) <= 2
