"""Tests for the hierarchy, system builder, simulator and experiment runner."""

import pytest

from repro.baselines.invisispec import InvisiSpecMemorySystem
from repro.baselines.stt import STTMemorySystem
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.caches.hierarchy import NonSpeculativeHierarchy
from repro.common.params import ProtectionMode, SystemConfig
from repro.core.muontrap import MuonTrapMemorySystem
from repro.sim.runner import (
    ExperimentRunner,
    cumulative_protection_configs,
    standard_modes,
    unprotected_config,
)
from repro.sim.simulator import Simulator
from repro.sim.sweeps import (
    filter_cache_associativity_configs,
    filter_cache_size_configs,
)
from repro.sim.system import build_memory_system, build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile


class TestHierarchy:
    def test_conventional_access_fills_l1_and_l2(self):
        hierarchy = NonSpeculativeHierarchy(SystemConfig(num_cores=1))
        result = hierarchy.access(0, 0x1_0000, now=0)
        assert result.hit_level == "memory"
        assert hierarchy.l1d(0).contains(0x1_0000)
        assert hierarchy.l2.contains(0x1_0000)
        repeat = hierarchy.access(0, 0x1_0000, now=500)
        assert repeat.hit_level == "l1"
        assert repeat.latency == 2

    def test_read_for_filter_leaves_no_trace(self):
        hierarchy = NonSpeculativeHierarchy(SystemConfig(num_cores=1))
        result = hierarchy.read_for_filter(0, 0x2_0000, now=0)
        assert result.served
        assert not hierarchy.l1d(0).contains(0x2_0000)
        assert not hierarchy.l2.contains(0x2_0000)

    def test_commit_fill_l1_installs_line(self):
        hierarchy = NonSpeculativeHierarchy(SystemConfig(num_cores=1))
        hierarchy.commit_fill_l1(0, 0x3_0000, now=10)
        assert hierarchy.l1d(0).contains(0x3_0000)

    def test_flush_speculative_training_delivers_buffered_events(self):
        hierarchy = NonSpeculativeHierarchy(SystemConfig(num_cores=1))
        # The reorder window withholds the first three events.
        for index in range(3):
            hierarchy.train_l2_prefetcher(0x4_0000 + index * 64, pc=0x400,
                                          now=10 + index, was_miss=True)
        assert len(hierarchy._speculative_train_buffer) == 3
        trained_before = hierarchy.stats.get("l2_prefetcher.training_events")
        delivered = hierarchy.flush_speculative_training(now=100)
        assert delivered == 3
        assert not hierarchy._speculative_train_buffer
        assert (hierarchy.stats.get("l2_prefetcher.training_events")
                == trained_before + 3)
        # Idempotent once drained.
        assert hierarchy.flush_speculative_training(now=101) == 0

    def test_simulator_drains_training_buffer_at_end_of_run(self):
        config = SystemConfig(num_cores=1,
                              mode=ProtectionMode.UNPROTECTED)
        system = build_system(config, seed=3)
        workload = generate_workload(get_profile("mcf"), 600, seed=3)
        Simulator(system).run(workload)
        assert not (system.memory_system.hierarchy
                    ._speculative_train_buffer)

    def test_commit_store_reports_broadcast_need(self):
        hierarchy = NonSpeculativeHierarchy(SystemConfig(num_cores=2))
        result = hierarchy.commit_store(0, 0x4_0000, now=10,
                                        broadcast_to_filters=True)
        assert result.triggered_filter_broadcast
        # A second store to the now-private line needs no broadcast.
        repeat = hierarchy.commit_store(0, 0x4_0000, now=50,
                                        broadcast_to_filters=True)
        assert not repeat.triggered_filter_broadcast


class TestSystemBuilder:
    @pytest.mark.parametrize("mode,expected", [
        (ProtectionMode.UNPROTECTED, UnprotectedMemorySystem),
        (ProtectionMode.MUONTRAP, MuonTrapMemorySystem),
        (ProtectionMode.INVISISPEC_SPECTRE, InvisiSpecMemorySystem),
        (ProtectionMode.INVISISPEC_FUTURE, InvisiSpecMemorySystem),
        (ProtectionMode.STT_SPECTRE, STTMemorySystem),
        (ProtectionMode.STT_FUTURE, STTMemorySystem),
    ])
    def test_builds_correct_memory_system(self, mode, expected):
        memory = build_memory_system(SystemConfig(mode=mode))
        assert isinstance(memory, expected)

    def test_build_system_creates_one_core_per_context(self):
        system = build_system(SystemConfig(num_cores=4))
        assert system.num_cores == 4
        assert system.core(3).core_id == 3

    def test_process_ids_must_match_core_count(self):
        with pytest.raises(ValueError):
            build_system(SystemConfig(num_cores=2), process_ids=[0])


class TestSimulator:
    def test_single_threaded_run(self):
        workload = generate_workload(get_profile("hmmer"), 1200, seed=11)
        system = build_system(SystemConfig(mode=ProtectionMode.UNPROTECTED))
        result = Simulator(system).run(workload)
        assert result.instructions == 1200
        assert result.cycles > 0
        assert result.ipc > 0

    def test_multithreaded_run_uses_all_cores(self):
        workload = generate_workload(get_profile("swaptions"), 600, seed=11)
        system = build_system(SystemConfig(mode=ProtectionMode.MUONTRAP,
                                           num_cores=4))
        result = Simulator(system).run(workload)
        assert result.instructions == 2400
        assert all(core.committed_instructions == 600
                   for core in result.core_results)

    def test_warmup_excludes_cycles_but_not_state(self):
        workload = generate_workload(get_profile("hmmer"), 1500, seed=11)
        cold = Simulator(build_system(
            SystemConfig(mode=ProtectionMode.UNPROTECTED))).run(workload)
        warm = Simulator(build_system(
            SystemConfig(mode=ProtectionMode.UNPROTECTED))).run(
                workload, warmup_fraction=0.4)
        assert warm.warmup_cycles > 0
        assert warm.cycles < cold.cycles

    def test_too_many_threads_rejected(self):
        workload = generate_workload(get_profile("ferret"), 200, seed=1)
        system = build_system(SystemConfig(num_cores=1))
        with pytest.raises(ValueError):
            Simulator(system).run(workload)

    def test_deterministic_given_seed(self):
        workload = generate_workload(get_profile("gcc"), 800, seed=5)
        first = Simulator(build_system(
            SystemConfig(mode=ProtectionMode.MUONTRAP), seed=3)).run(workload)
        second = Simulator(build_system(
            SystemConfig(mode=ProtectionMode.MUONTRAP), seed=3)).run(workload)
        assert first.cycles == second.cycles


class TestExperimentRunner:
    def test_normalised_series_contains_all_benchmarks(self):
        runner = ExperimentRunner(instructions=600)
        series = runner.normalised_series(
            ["hmmer", "povray"],
            {"MuonTrap": SystemConfig(mode=ProtectionMode.MUONTRAP)},
            unprotected_config())
        values = series["MuonTrap"].values
        assert set(values) == {"hmmer", "povray"}
        assert all(value > 0 for value in values.values())

    def test_results_are_cached(self):
        runner = ExperimentRunner(instructions=600)
        first = runner.run_benchmark("hmmer", unprotected_config())
        second = runner.run_benchmark("hmmer", unprotected_config())
        assert first.result is second.result

    def test_standard_modes_and_ablation_configs(self):
        modes = standard_modes()
        assert set(modes) == {"MuonTrap", "InvisiSpec-Spectre",
                              "InvisiSpec-Future", "STT-Spectre",
                              "STT-Future"}
        ablation = cumulative_protection_configs(include_parallel_l1=True)
        assert list(ablation)[-1] == "parallel L1d"
        assert not ablation["fcache only"].protection.coherence_protection
        assert ablation["coherency"].protection.coherence_protection
        assert ablation["clear misspec"].protection.clear_on_misspeculate

    def test_sweep_configs(self):
        sizes = filter_cache_size_configs([64, 2048])
        assert sizes[64].data_filter.size_bytes == 64
        assert sizes[2048].data_filter.num_sets == 1  # fully associative
        ways = filter_cache_associativity_configs([1, 4])
        assert ways[1].data_filter.associativity == 1
        assert ways[4].data_filter.associativity == 4
