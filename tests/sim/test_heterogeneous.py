"""Heterogeneous per-core machines and the differential regression layer.

The tentpole guarantee: making the per-core configuration explicit must be
*semantics-preserving*.  A heterogeneous ``SystemConfig`` whose per-core
entries are all identical has to produce bit-identical cycles and
statistics to the historical homogeneous path, for every protection scheme
and for 2- and 4-core mixes — that differential is what licenses the rest
of this file to trust the per-core plumbing when the entries genuinely
differ (big.LITTLE pipelines, asymmetric protection, mixed frontends on
one shared fabric).
"""

import pytest

from repro.common.params import (
    DEFAULT_PRIVATE_L2,
    CacheConfig,
    CoreConfig,
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
    big_core,
    biglittle_system_config,
    corun_system_config,
    heterogeneous_corun_config,
    little_core,
)
from repro.sim.hetero import HeterogeneousMemorySystem
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.mixes import get_machine, machine_names
from repro.workloads.profiles import get_profile

SEED = 1234
INSTRUCTIONS = 300

#: (num_cores, mix) pairs the differential covers; the 4-core mix drives
#: four distinct address spaces through the shared fabric.
MIXES = {2: "mix-pointer-stream", 4: "mix-quad"}


def _run(config: SystemConfig, mix: str):
    profile = get_profile(mix)
    workload = generate_workload(profile, INSTRUCTIONS, seed=SEED)
    simulator = Simulator(build_system(config, seed=SEED))
    return simulator.run(workload, collect_stats=True)


class TestValidation:
    def test_core_list_length_must_match_num_cores(self):
        cores = (CoreConfig(), CoreConfig(), CoreConfig())
        with pytest.raises(ValueError, match="3 entries but num_cores is 2"):
            SystemConfig(num_cores=2, cores=cores)

    def test_per_core_line_size_must_match_shared_hierarchy(self):
        odd = CoreConfig(
            l1i=CacheConfig(name="l1i", size_bytes=16 * 1024,
                            associativity=2, line_size=32),
            l1d=CacheConfig(name="l1d", size_bytes=32 * 1024,
                            associativity=2, line_size=32))
        with pytest.raises(ValueError, match="core 1"):
            SystemConfig(num_cores=2, cores=(CoreConfig(), odd))

    def test_per_core_page_size_must_match_the_machine(self):
        from repro.common.params import TLBConfig
        odd = CoreConfig(tlb=TLBConfig(page_size=8192))
        with pytest.raises(ValueError, match="page size"):
            SystemConfig(num_cores=2, cores=(CoreConfig(), odd))

    def test_core_l1_line_sizes_must_agree(self):
        with pytest.raises(ValueError, match="L1 line sizes"):
            CoreConfig(l1i=CacheConfig(name="l1i", size_bytes=16 * 1024,
                                       associativity=2, line_size=32))

    def test_with_cores_tiles_an_explicit_core_list(self):
        machine = biglittle_system_config(
            [ProtectionMode.MUONTRAP], [ProtectionMode.UNPROTECTED])
        grown = machine.with_cores(4)
        assert grown.num_cores == 4
        assert [core.pipeline.width for core in grown.core_configs()] == [
            8, 2, 8, 2]
        assert grown.core_modes == (
            ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED,
            ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED)

    def test_with_mode_overrides_every_core(self):
        machine = heterogeneous_corun_config(
            [ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED])
        uniform = machine.with_mode(ProtectionMode.STT_SPECTRE)
        assert not uniform.is_scheme_heterogeneous
        assert uniform.mode_label == "stt-spectre"

    def test_mode_label(self):
        assert SystemConfig().mode_label == "muontrap"
        machine = heterogeneous_corun_config(
            [ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED])
        assert machine.is_scheme_heterogeneous
        assert machine.mode_label == "muontrap+unprotected"

    def test_as_heterogeneous_preserves_the_derived_view(self):
        config = corun_system_config(num_cores=2)
        explicit = config.as_heterogeneous()
        assert explicit.cores == tuple(config.core_configs())
        assert explicit.core_config(0) == config.core_config(0)


class TestDifferentialRegression:
    """Identical-per-core heterogeneous == homogeneous, bit for bit."""

    @pytest.mark.parametrize("num_cores", sorted(MIXES))
    @pytest.mark.parametrize("mode", list(ProtectionMode),
                             ids=[mode.value for mode in ProtectionMode])
    def test_identical_cores_match_homogeneous_path(self, mode, num_cores):
        config = corun_system_config(mode=mode, num_cores=num_cores)
        homogeneous = _run(config, MIXES[num_cores])
        heterogeneous = _run(config.as_heterogeneous(), MIXES[num_cores])
        assert heterogeneous.cycles == homogeneous.cycles
        assert heterogeneous.instructions == homogeneous.instructions
        assert heterogeneous.mode == homogeneous.mode
        assert heterogeneous.stats == homogeneous.stats
        assert [core.cycles for core in heterogeneous.core_results] == [
            core.cycles for core in homogeneous.core_results]

    def test_identical_cores_match_on_shared_l2_topology(self):
        """The differential also holds without private L2s."""
        config = corun_system_config(ProtectionMode.MUONTRAP, num_cores=2,
                                     private_l2=False)
        homogeneous = _run(config, MIXES[2])
        heterogeneous = _run(config.as_heterogeneous(), MIXES[2])
        assert heterogeneous.cycles == homogeneous.cycles
        assert heterogeneous.stats == homogeneous.stats


class TestHeterogeneousExecution:
    def test_mixed_schemes_build_the_composite_memory_system(self):
        machine = heterogeneous_corun_config(
            [ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED])
        system = build_system(machine, seed=0)
        memory = system.memory_system
        assert isinstance(memory, HeterogeneousMemorySystem)
        # One frontend per scheme, all wired to the one shared fabric.
        assert memory.frontend(0).name == "muontrap"
        assert memory.frontend(1).name == "unprotected"
        assert memory.frontend(0).hierarchy is memory.hierarchy
        assert memory.frontend(1).hierarchy is memory.hierarchy
        # Each core is driven against its own scheme frontend.
        assert system.core(0).memory is memory.frontend(0)
        assert system.core(1).memory is memory.frontend(1)

    def test_uniform_core_list_builds_a_single_scheme_system(self):
        config = corun_system_config(ProtectionMode.UNPROTECTED,
                                     num_cores=2).as_heterogeneous()
        system = build_system(config, seed=0)
        assert not isinstance(system.memory_system,
                              HeterogeneousMemorySystem)
        assert system.memory_system.name == "unprotected"

    def test_biglittle_pipelines_and_caches_differ_per_core(self):
        machine = biglittle_system_config(
            [ProtectionMode.MUONTRAP], [ProtectionMode.MUONTRAP])
        system = build_system(machine, seed=0)
        big, little = system.core(0), system.core(1)
        assert big.core_config.width == 8
        assert little.core_config.width == 2
        assert little.rob.capacity < big.rob.capacity
        hierarchy = system.memory_system.hierarchy
        assert hierarchy.l1d(0).config.size_bytes == 64 * 1024
        assert hierarchy.l1d(1).config.size_bytes == 32 * 1024
        assert hierarchy.private_l2(0).config.size_bytes == 256 * 1024
        assert hierarchy.private_l2(1).config.size_bytes == 128 * 1024

    def test_little_core_is_dispatch_bound_on_alu_work(self):
        """A 2-wide LITTLE core must be bandwidth-bound relative to the big
        core on pure ALU work: 400 independent single-cycle ops need at
        least 200 cycles at width 2, while the 8-wide core stays far
        below that."""
        from repro.cpu.instructions import MicroOp, OpKind

        machine = biglittle_system_config(
            [ProtectionMode.UNPROTECTED], [ProtectionMode.UNPROTECTED])
        ops = [MicroOp(kind=OpKind.INT_ALU, pc=0x1000 + 4 * index)
               for index in range(400)]
        # Fresh system per measurement: running both cores on one machine
        # would hand the second run a warm shared LLC.
        big = build_system(machine, seed=SEED).core(0).run(iter(ops))
        little = build_system(machine, seed=SEED).core(1).run(iter(ops))
        assert little.cycles > big.cycles
        assert little.cycles >= 200

    def test_heterogeneous_run_is_deterministic(self):
        machine = heterogeneous_corun_config(
            [ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED])
        first = _run(machine, MIXES[2])
        second = _run(machine, MIXES[2])
        assert first.cycles == second.cycles
        assert first.stats == second.stats
        assert first.mode == "muontrap+unprotected"

    def test_mixed_stt_core_only_delays_its_own_transmitters(self):
        """Capability probes are per core: an STT core's taint machinery
        must not leak onto its unprotected neighbour."""
        machine = heterogeneous_corun_config(
            [ProtectionMode.STT_SPECTRE, ProtectionMode.UNPROTECTED])
        system = build_system(machine, seed=0)
        assert system.core(0)._stt_mode
        assert not system.core(1)._stt_mode

    @pytest.mark.parametrize("name", machine_names())
    def test_every_machine_preset_builds_and_runs(self, name):
        machine = get_machine(name)
        result = _run(machine.with_cores(2), "mix-pointer-stream")
        assert result.instructions == 2 * INSTRUCTIONS
        assert result.cycles > 0
        assert result.core_benchmarks == ["mcf", "lbm"]
