"""Per-core frequency as a real cycle-time multiplier (ROADMAP follow-up).

``PipelineConfig.frequency_ghz`` was previously recorded but never applied
to timing.  It now scales the *reported* per-core wall-clock and
normalised times: at identical cycle counts, a core clocked 2× faster
reports exactly 2× lower time.  Cycle counts themselves are untouched, so
all historical cycle-pinned results stay bit-identical.
"""

from dataclasses import replace

import pytest

from repro import api
from repro.common.params import ProtectionMode, SystemConfig
from repro.harness.campaign import Campaign
from repro.sim.simulator import (
    REFERENCE_FREQUENCY_GHZ,
    SimulationResult,
)

INSTRUCTIONS = 800
SEED = 5


def with_frequency(config: SystemConfig, frequency: float) -> SystemConfig:
    return replace(config, core=replace(config.core,
                                        frequency_ghz=frequency))


class TestFrequencyScaling:
    def test_double_frequency_halves_reported_time_at_equal_cycles(self):
        base = api.simulate("mcf", SystemConfig(), seed=SEED,
                            instructions=INSTRUCTIONS)
        fast = api.simulate("mcf", with_frequency(SystemConfig(), 4.0),
                            seed=SEED, instructions=INSTRUCTIONS)
        # The clock does not change the microarchitectural cycle count...
        assert fast.cycles == base.cycles
        # ...but the reported time is exactly halved.
        assert fast.time == base.time / 2
        assert fast.wall_seconds == base.wall_seconds / 2
        assert fast.result.core_wall_seconds()[0] \
            == base.result.core_wall_seconds()[0] / 2

    def test_reference_frequency_time_equals_cycles(self):
        outcome = api.simulate("mcf", seed=SEED, instructions=INSTRUCTIONS)
        assert outcome.result.core_frequencies_ghz \
            == [REFERENCE_FREQUENCY_GHZ]
        assert outcome.time == float(outcome.cycles)

    def test_normalised_comparison_credits_the_faster_clock(self):
        campaign = Campaign(
            ["mcf"],
            configs={"fast": with_frequency(SystemConfig(), 4.0)},
            baseline_config=SystemConfig(mode=ProtectionMode.UNPROTECTED),
            instructions=INSTRUCTIONS, seed=SEED)
        normalised = campaign.run().normalised()["fast"]["mcf"]
        same_clock = Campaign(
            ["mcf"], configs={"same": SystemConfig()},
            baseline_config=SystemConfig(mode=ProtectionMode.UNPROTECTED),
            instructions=INSTRUCTIONS, seed=SEED)
        reference = same_clock.run().normalised()["same"]["mcf"]
        assert normalised == pytest.approx(reference / 2)

    def test_per_constituent_times_scale_per_core(self):
        # big.LITTLE: the LITTLE core runs at 1.2 GHz, so its reported
        # time exceeds its cycle count by the clock ratio.
        outcome = api.simulate("mix-pointer-stream", "biglittle-muontrap",
                               seed=SEED, instructions=INSTRUCTIONS)
        result = outcome.result
        assert result.core_frequencies_ghz == [2.0, 1.2]
        times = result.core_times()
        warmups = list(result.core_warmup_cycles) \
            + [0] * (len(result.core_results) - len(result.core_warmup_cycles))
        for core, warmup, frequency, time in zip(
                result.core_results, warmups,
                result.core_frequencies_ghz, times):
            assert time == pytest.approx(
                (core.cycles - warmup) * REFERENCE_FREQUENCY_GHZ / frequency)
        parts = result.per_benchmark()
        for part in parts.values():
            assert part.core_frequencies_ghz
            assert part.time == max(part.core_times())

    def test_synthetic_results_default_to_the_reference_clock(self):
        # Results constructed without frequencies (older stored payloads,
        # hand-built fixtures) keep the historical cycles == time identity.
        result = SimulationResult(benchmark="x", mode="muontrap",
                                  cycles=1000, instructions=500)
        assert result.time == 1000.0
        assert result.wall_seconds == pytest.approx(1000 / 2.0e9)
