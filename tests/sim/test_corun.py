"""Multi-core co-run simulation: private hierarchies, scheduling, results."""

import pytest

from repro.common.params import (
    DEFAULT_PRIVATE_L2,
    ProtectionMode,
    SystemConfig,
    corun_system_config,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile


def _corun_result(mode=ProtectionMode.UNPROTECTED, mix="mix-pointer-stream",
                  instructions=300, seed=7, private_l2=True,
                  collect_stats=False) -> SimulationResult:
    profile = get_profile(mix)
    config = corun_system_config(mode=mode, num_cores=profile.num_threads,
                                 private_l2=private_l2)
    workload = generate_workload(profile, instructions, seed=seed)
    simulator = Simulator(build_system(config, seed=seed))
    return simulator.run(workload, collect_stats=collect_stats)


class TestPrivateL2Construction:
    def test_corun_config_gets_private_l2(self):
        config = corun_system_config(num_cores=2)
        assert config.private_l2 == DEFAULT_PRIVATE_L2
        assert config.num_cores == 2

    def test_private_l2_line_size_validated(self):
        with pytest.raises(ValueError):
            SystemConfig(private_l2=DEFAULT_PRIVATE_L2.__class__(
                name="l2p", size_bytes=64 * 1024, associativity=4,
                line_size=32))

    def test_hierarchy_builds_one_private_l2_per_core(self):
        config = corun_system_config(ProtectionMode.UNPROTECTED, num_cores=3)
        system = build_system(config, seed=0)
        hierarchy = system.memory_system.hierarchy
        l2ps = [hierarchy.private_l2(core) for core in range(3)]
        assert all(l2p is not None for l2p in l2ps)
        assert len({id(l2p) for l2p in l2ps}) == 3
        # Each core's private caches (L1d + L2p) sit on the coherence bus.
        for core in range(3):
            assert hierarchy.bus.private_caches(core) == [
                hierarchy.l1d(core), l2ps[core]]

    def test_default_topology_has_no_private_l2(self):
        system = build_system(SystemConfig(num_cores=2), seed=0)
        hierarchy = system.memory_system.hierarchy
        assert hierarchy.private_l2(0) is None
        assert hierarchy.bus.private_caches(0) == [hierarchy.l1d(0)]

    def test_private_l2_absorbs_l1_victims(self):
        """A miss serviced once is later served by the private L2, not the
        bus: the hit goes to the ``l2p`` level."""
        config = corun_system_config(ProtectionMode.UNPROTECTED, num_cores=2)
        system = build_system(config, seed=0)
        hierarchy = system.memory_system.hierarchy
        line = 0x4_0000
        first = hierarchy.access(0, line, 0)
        assert first.hit_level == "memory"
        # Evict from the (tiny relative to L2p) L1 by filling its set.
        l1 = hierarchy.l1d(0)
        set_period = l1.num_sets * l1.line_size
        for way in range(1, l1.associativity + 2):
            hierarchy.access(0, line + way * set_period, 100 + way)
        assert l1.probe(line) is None
        again = hierarchy.access(0, line, 1000)
        assert again.hit_level == "l2p"


class TestCoRunExecution:
    def test_per_core_results_carry_benchmarks(self):
        result = _corun_result()
        assert result.core_benchmarks == ["mcf", "lbm"]
        assert result.is_corun
        assert len(result.core_results) == 2
        parts = result.per_benchmark()
        assert set(parts) == {"mcf", "lbm"}
        assert parts["mcf"].cycles == result.core_results[0].cycles
        assert parts["lbm"].cycles == result.core_results[1].cycles
        assert result.cycles == max(part.cycles for part in parts.values())
        assert result.instructions == sum(part.instructions
                                          for part in parts.values())

    def test_single_program_result_is_not_corun(self, seeded_config):
        config, seed = seeded_config
        profile = get_profile("mcf")
        workload = generate_workload(profile, 200, seed=seed)
        system = build_system(config, seed=seed)
        result = Simulator(system).run(workload)
        assert result.core_benchmarks == ["mcf"]
        assert not result.is_corun

    def test_per_benchmark_excludes_warmup_like_the_aggregate(self):
        """With warm-up enabled the parts must stay consistent with the
        aggregate: same accounting, no warm-up cycles leaking back in."""
        profile = get_profile("mix-pointer-stream")
        config = corun_system_config(ProtectionMode.UNPROTECTED,
                                     num_cores=profile.num_threads)
        workload = generate_workload(profile, 400, seed=7)
        result = Simulator(build_system(config, seed=7)).run(
            workload, warmup_fraction=0.35)
        assert result.warmup_cycles > 0
        parts = result.per_benchmark()
        assert result.cycles == max(part.cycles for part in parts.values())
        assert result.instructions == sum(part.instructions
                                          for part in parts.values())
        for part in parts.values():
            assert 0 < part.cycles <= result.cycles

    def test_corun_is_deterministic(self, seeded_config):
        _, seed = seeded_config
        first = _corun_result(seed=seed, collect_stats=True)
        second = _corun_result(seed=seed, collect_stats=True)
        assert first.cycles == second.cycles
        assert first.stats == second.stats

    def test_constituents_contend_in_the_shared_llc(self):
        """Co-running two programs must be slower for at least one of them
        than running alone on the same topology (LLC/bus contention)."""
        together = _corun_result(mix="mix-pointer-pointer",
                                 instructions=400)
        parts = together.per_benchmark()
        alone = {}
        for benchmark in parts:
            profile = get_profile(benchmark)
            config = corun_system_config(ProtectionMode.UNPROTECTED,
                                         num_cores=2)
            workload = generate_workload(profile, 400, seed=7)
            system = build_system(config, seed=7)
            alone[benchmark] = Simulator(system).run(workload)
        assert any(parts[b].cycles >= alone[b].cycles for b in parts)

    def test_distinct_address_spaces_do_not_alias(self):
        """Identical virtual addresses in different processes are distinct
        physical lines: a same-benchmark mix stays coherent and its cores'
        private caches never share lines."""
        from repro.workloads.mixes import MixProfile, generate_mix
        mix = MixProfile(name="test-twin", members=("lbm", "lbm"))
        workload = generate_mix(mix, 200, seed=2)
        config = corun_system_config(ProtectionMode.UNPROTECTED, num_cores=2)
        system = build_system(config, seed=2)
        result = Simulator(system).run(workload)
        assert result.instructions == 400
        hierarchy = system.memory_system.hierarchy
        lines0 = {line.address
                  for line in hierarchy.l1d(0).resident_lines()}
        lines1 = {line.address
                  for line in hierarchy.l1d(1).resident_lines()}
        assert not lines0 & lines1

    @pytest.mark.parametrize("mode", [ProtectionMode.MUONTRAP,
                                      ProtectionMode.UNPROTECTED],
                             ids=lambda mode: mode.value)
    def test_corun_runs_under_both_topologies(self, mode):
        with_l2p = _corun_result(mode=mode, private_l2=True)
        without = _corun_result(mode=mode, private_l2=False)
        assert with_l2p.instructions == without.instructions == 600
        assert with_l2p.cycles > 0 and without.cycles > 0
