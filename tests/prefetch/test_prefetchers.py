"""Tests for the prefetchers and the commit-time notification channel."""

from repro.prefetch.base import NullPrefetcher, TrainingEvent
from repro.prefetch.commit_channel import (
    CommitPrefetchChannel,
    PrefetchNotification,
)
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.stream import StreamPrefetcher
from repro.prefetch.stride import StridePrefetcher


def event(address, pc=0x400, cycle=0, was_miss=True):
    return TrainingEvent(address=address, pc=pc, cycle=cycle,
                         was_miss=was_miss)


class TestStridePrefetcher:
    def test_constant_stride_is_detected(self):
        prefetcher = StridePrefetcher(degree=1, distance=0,
                                      confidence_threshold=2)
        issued = []
        for index in range(6):
            issued = prefetcher.train(event(0x1000 + index * 256))
        assert issued, "a constant stride must eventually prefetch"
        assert issued[0] > 0x1000

    def test_irregular_stream_never_prefetches(self):
        prefetcher = StridePrefetcher()
        addresses = [0x1000, 0x5000, 0x2000, 0x9000, 0x3000, 0x7000]
        assert all(not prefetcher.train(event(a)) for a in addresses)

    def test_reset_clears_table(self):
        prefetcher = StridePrefetcher()
        prefetcher.train(event(0x1000))
        prefetcher.reset()
        assert prefetcher.entry_for_pc(0x400) is None


class TestStreamPrefetcher:
    def test_region_stream_detected_regardless_of_pc(self):
        prefetcher = StreamPrefetcher(degree=2, distance=2)
        issued = []
        for index in range(8):
            issued = prefetcher.train(event(0x40_0000 + index * 64,
                                            pc=0x400 + index * 4))
        assert issued
        assert all(line > 0x40_0000 + 7 * 64 for line in issued)

    def test_disruption_reduces_confidence(self):
        prefetcher = StreamPrefetcher(degree=1, distance=1)
        for index in range(6):
            prefetcher.train(event(0x40_0000 + index * 64))
        before = prefetcher.disruptions
        prefetcher.train(event(0x40_0000 + 640))   # breaks the stride
        assert prefetcher.disruptions == before + 1

    def test_streams_in_different_regions_are_independent(self):
        prefetcher = StreamPrefetcher(degree=1, distance=1)
        for index in range(6):
            prefetcher.train(event(0x10_0000 + index * 64))
            prefetcher.train(event(0x20_0000 + index * 128))
        assert prefetcher.entry_for_address(0x10_0000).stride == 64
        assert prefetcher.entry_for_address(0x20_0000).stride == 128


class TestNextLineAndNull:
    def test_next_line_on_miss_only(self):
        prefetcher = NextLinePrefetcher(degree=2, only_on_miss=True)
        assert prefetcher.train(event(0x1000, was_miss=False)) == []
        assert prefetcher.train(event(0x1000, was_miss=True)) == [
            0x1040, 0x1080]

    def test_null_prefetcher_is_silent(self):
        prefetcher = NullPrefetcher()
        assert prefetcher.train(event(0x1000)) == []
        assert prefetcher.prefetches_issued == 0


class TestCommitPrefetchChannel:
    def _channel(self):
        channel = CommitPrefetchChannel()
        fills = []
        channel.attach("l2", StreamPrefetcher(degree=1, distance=0),
                       lambda line, now: fills.append(line))
        return channel, fills

    def test_notifications_reach_attached_prefetcher(self):
        channel, fills = self._channel()
        for index in range(8):
            channel.notify(PrefetchNotification(
                line_address=0x9000 + index * 64, pc=0x400, level="l2",
                cycle=index))
            channel.drain(now=index)
        assert fills, "commit-time training must eventually issue prefetches"

    def test_unattached_level_is_ignored(self):
        channel, fills = self._channel()
        channel.notify(PrefetchNotification(line_address=0x9000, pc=0,
                                            level="l1", cycle=0))
        assert channel.pending == 0

    def test_queue_capacity_drops_excess(self):
        channel = CommitPrefetchChannel(queue_capacity=2)
        channel.attach("l2", NullPrefetcher(), lambda line, now: None)
        for index in range(5):
            channel.notify(PrefetchNotification(line_address=index * 64,
                                                pc=0, level="l2", cycle=0))
        assert channel.pending == 2
