"""Tests for the configuration dataclasses (Table 1)."""

import pytest

from repro.common.params import (
    CacheConfig,
    FilterCacheConfig,
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
    default_system_config,
    parsec_system_config,
    spec_system_config,
)


class TestCacheConfig:
    def test_table1_l1d_geometry(self):
        config = default_system_config()
        assert config.l1d.size_bytes == 64 * 1024
        assert config.l1d.associativity == 2
        assert config.l1d.hit_latency == 2
        assert config.l1d.num_sets == 512
        assert config.l1d.num_lines == 1024

    def test_table1_l1i_and_l2(self):
        config = default_system_config()
        assert config.l1i.size_bytes == 32 * 1024
        assert config.l1i.hit_latency == 1
        assert config.l2.size_bytes == 2 * 1024 * 1024
        assert config.l2.associativity == 8
        assert config.l2.hit_latency == 20
        assert config.l2.prefetcher == "stride"

    def test_rejects_non_power_of_two_line_size(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1024, associativity=2,
                        line_size=48)

    def test_rejects_associativity_above_line_count(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=128, associativity=4,
                        line_size=64)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=0, associativity=1)


class TestFilterCacheConfig:
    def test_default_is_2kib_4way_1cycle(self):
        filter_config = FilterCacheConfig()
        assert filter_config.size_bytes == 2048
        assert filter_config.associativity == 4
        assert filter_config.hit_latency == 1
        assert filter_config.num_lines == 32
        assert filter_config.num_sets == 8

    def test_fully_associative_helper(self):
        filter_config = FilterCacheConfig().fully_associative()
        assert filter_config.associativity == filter_config.num_lines
        assert filter_config.num_sets == 1

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            FilterCacheConfig(size_bytes=32)


class TestProtectionConfig:
    def test_full_enables_everything_needed(self):
        protection = ProtectionConfig.full()
        assert protection.data_filter_cache
        assert protection.instruction_filter_cache
        assert protection.coherence_protection
        assert protection.commit_time_prefetch
        assert not protection.clear_on_misspeculate

    def test_none_disables_everything(self):
        protection = ProtectionConfig.none()
        assert not protection.data_filter_cache
        assert not protection.coherence_protection
        assert not protection.commit_time_prefetch


class TestSystemConfig:
    def test_mode_helpers(self):
        config = default_system_config()
        assert config.mode is ProtectionMode.MUONTRAP
        assert config.with_mode(ProtectionMode.STT_FUTURE).mode is \
            ProtectionMode.STT_FUTURE
        assert config.with_cores(4).num_cores == 4

    def test_spec_and_parsec_presets(self):
        assert spec_system_config().num_cores == 1
        assert parsec_system_config().num_cores == 4

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_mode_predicates(self):
        assert ProtectionMode.INVISISPEC_FUTURE.is_invisispec
        assert ProtectionMode.STT_SPECTRE.is_stt
        assert ProtectionMode.MUONTRAP.uses_filter_cache
        assert not ProtectionMode.UNPROTECTED.uses_filter_cache
