"""Tests for the statistics tree and the deterministic RNG."""

from hypothesis import given, strategies as st

import pytest

from repro.common.rng import DeterministicRng
from repro.common.statistics import (
    Counter,
    Histogram,
    StatGroup,
    geometric_mean,
    ratio,
)


class TestCountersAndHistograms:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5
        counter.reset()
        assert counter.value == 0

    def test_counter_batched_add(self):
        counter = Counter("c")
        counter.add(10)
        counter.add(32)
        assert counter.value == 42

    def test_histogram_mean(self):
        histogram = Histogram("h")
        histogram.sample(10)
        histogram.sample(20, weight=3)
        assert histogram.count == 4
        assert histogram.mean == pytest.approx(17.5)
        assert histogram.buckets() == {10: 1, 20: 3}

    def test_histogram_buckets_view_is_read_only_and_live(self):
        histogram = Histogram("h")
        histogram.sample(10)
        view = histogram.buckets()
        with pytest.raises(TypeError):
            view[10] = 99
        # The view is live: later samples show through without re-fetching.
        histogram.sample(10)
        histogram.sample(20)
        assert view == {10: 2, 20: 1}
        # Reading a missing key must not materialise a bucket.
        assert view.get(999) is None
        assert 999 not in histogram.buckets()

    def test_histogram_percentile_nearest_rank(self):
        histogram = Histogram("h")
        for value in (15, 20, 35, 40, 50):
            histogram.sample(value)
        # Canonical nearest-rank worked example.
        assert histogram.percentile(5) == 15.0
        assert histogram.percentile(30) == 20.0
        assert histogram.percentile(40) == 20.0
        assert histogram.percentile(50) == 35.0
        assert histogram.percentile(100) == 50.0
        assert histogram.percentile(0) == 15.0

    def test_histogram_percentile_respects_weights(self):
        histogram = Histogram("h")
        histogram.sample(1, weight=99)
        histogram.sample(1000)
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(99) == 1.0
        assert histogram.percentile(100) == 1000.0

    def test_histogram_percentile_edge_cases(self):
        histogram = Histogram("h")
        # An empty histogram has no percentiles: a silent 0.0 here once
        # masqueraded as a measured zero-latency tail in summaries.
        with pytest.raises(ValueError, match="empty"):
            histogram.percentile(50)
        with pytest.raises(ValueError):
            histogram.percentile(-1)
        with pytest.raises(ValueError):
            histogram.percentile(100.5)
        # The out-of-range check wins even on an empty histogram, and one
        # sample makes every percentile well-defined again.
        histogram.sample(3)
        assert histogram.percentile(0) == 3.0
        assert histogram.percentile(100) == 3.0

    @given(st.lists(st.integers(min_value=0, max_value=500),
                    min_size=1, max_size=60))
    def test_histogram_percentile_matches_sorted_samples(self, values):
        import math
        histogram = Histogram("h")
        for value in values:
            histogram.sample(value)
        ordered = sorted(values)
        for p in (1, 25, 50, 75, 90, 99, 100):
            rank = max(1, math.ceil(len(ordered) * p / 100))
            assert histogram.percentile(p) == float(ordered[rank - 1])

    def test_histogram_stddev(self):
        import statistics as stdlib_statistics
        histogram = Histogram("h")
        # No samples -> undefined, a hard error; one sample -> a genuine
        # (and genuinely zero) deviation.  The distinction matters: 0.0
        # on empty read as "perfectly tight distribution".
        with pytest.raises(ValueError, match="empty"):
            histogram.stddev()
        histogram.sample(4)
        assert histogram.stddev() == 0.0              # single sample
        histogram.sample(8, weight=2)
        histogram.sample(2)
        expected = stdlib_statistics.pstdev([4, 8, 8, 2])
        assert histogram.stddev() == pytest.approx(expected)


class TestStatGroup:
    def test_nested_access_by_path(self):
        root = StatGroup("system")
        root.child("l1d").counter("hits").increment(7)
        assert root.get("l1d.hits") == 7
        assert root.get_or_zero("l1d.misses") == 0
        with pytest.raises(KeyError):
            root.get("l1d.nonexistent")

    def test_walk_and_reset(self):
        root = StatGroup("root")
        root.counter("a").increment(1)
        root.child("x").counter("b").increment(2)
        flattened = root.as_dict()
        assert flattened["root.a"] == 1
        assert flattened["root.x.b"] == 2
        root.reset()
        assert root.get("a") == 0

    def test_report_is_printable(self):
        root = StatGroup("root")
        root.counter("a", "description").increment(3)
        assert "a" in root.report()


class TestAggregates:
    def test_ratio(self):
        assert ratio(1, 2) == 0.5
        assert ratio(1, 0, default=7.0) == 7.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == \
            [b.randint(0, 100) for _ in range(20)]

    def test_fork_streams_differ(self):
        root = DeterministicRng(7)
        assert [root.fork(1).randint(0, 10 ** 6) for _ in range(5)] != \
            [root.fork(2).randint(0, 10 ** 6) for _ in range(5)]

    def test_chance_extremes(self):
        rng = DeterministicRng(0)
        assert not rng.chance(0.0)
        assert rng.chance(1.0)

    @given(mean=st.floats(min_value=1.0, max_value=20.0))
    def test_geometric_at_least_one(self, mean):
        rng = DeterministicRng(3)
        assert all(rng.geometric(mean, maximum=100) >= 1 for _ in range(50))

    @given(n=st.integers(min_value=1, max_value=1000))
    def test_zipf_index_in_range(self, n):
        rng = DeterministicRng(5)
        assert all(0 <= rng.zipf_index(n) < n for _ in range(50))

    def test_weighted_choice_respects_zero_weight(self):
        rng = DeterministicRng(1)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0])
                 for _ in range(50)}
        assert picks == {"a"}
