"""Tests and property tests for the address arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.addresses import (
    AddressRange,
    block_align,
    block_number,
    block_offset,
    lines_covering,
    page_align,
    page_number,
    set_index,
)


class TestBlockArithmetic:
    def test_align_and_offset(self):
        assert block_align(0x1234, 64) == 0x1200
        assert block_offset(0x1234, 64) == 0x34
        assert block_number(0x1234, 64) == 0x48

    def test_page_helpers(self):
        assert page_align(0x12345) == 0x12000
        assert page_number(0x12345) == 0x12

    def test_set_index_wraps(self):
        assert set_index(0, 8) == 0
        assert set_index(64 * 8, 8) == 0
        assert set_index(64 * 9, 8) == 1

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            block_align(100, 48)

    def test_lines_covering(self):
        lines = list(lines_covering(100, 200, 64))
        assert lines == [64, 128, 192, 256]
        assert list(lines_covering(0, 0)) == []


class TestAddressRange:
    def test_contains_and_overlaps(self):
        a = AddressRange(base=100, size=50)
        b = AddressRange(base=140, size=50)
        c = AddressRange(base=200, size=10)
        assert a.contains(100) and a.contains(149) and not a.contains(150)
        assert a.overlaps(b) and not a.overlaps(c)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            AddressRange(base=0, size=-1)


@given(address=st.integers(min_value=0, max_value=2 ** 48),
       block_bits=st.integers(min_value=4, max_value=12))
def test_align_offset_recompose(address, block_bits):
    """align(addr) + offset(addr) == addr for any power-of-two block."""
    block = 1 << block_bits
    assert block_align(address, block) + block_offset(address, block) == address


@given(address=st.integers(min_value=0, max_value=2 ** 48),
       block_bits=st.integers(min_value=4, max_value=12))
def test_alignment_is_idempotent(address, block_bits):
    block = 1 << block_bits
    aligned = block_align(address, block)
    assert block_align(aligned, block) == aligned
    assert block_offset(aligned, block) == 0


@given(address=st.integers(min_value=0, max_value=2 ** 40),
       num_sets=st.integers(min_value=1, max_value=4096))
def test_set_index_in_range(address, num_sets):
    assert 0 <= set_index(address, num_sets) < num_sets
