"""Integration-level tests for the MuonTrap memory system's guarantees."""

import pytest

from repro.common.params import (
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
)
from repro.core.domains import DomainKind, DomainTracker
from repro.core.muontrap import MuonTrapMemorySystem


def build(num_cores=1, protection=None):
    config = SystemConfig(mode=ProtectionMode.MUONTRAP, num_cores=num_cores,
                          protection=protection or ProtectionConfig.full())
    return MuonTrapMemorySystem(config)


class TestSpeculativeIsolation:
    def test_speculative_load_fills_only_filter_cache(self):
        memory = build()
        result = memory.load(0, 0, 0x1_0000, 100, speculative=True)
        assert result.served
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.data_filter(0).contains_physical(physical)
        assert not memory.hierarchy.l1d(0).contains(physical)
        assert not memory.hierarchy.l2.contains(physical)

    def test_commit_writes_line_through_to_l1(self):
        memory = build()
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        memory.commit_load(0, 0, 0x1_0000, 400)
        physical = memory.page_tables.address_space(0).translate(0x1_0000)
        assert memory.hierarchy.l1d(0).contains(physical)
        line = memory.data_filter(0).probe_physical(physical)
        assert line is not None and line.committed

    def test_second_speculative_access_hits_filter_cache(self):
        memory = build()
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        repeat = memory.load(0, 0, 0x1_0008, 300, speculative=True)
        assert repeat.hit_level == "l0"
        assert repeat.latency <= 2

    def test_context_switch_clears_filter_caches(self):
        memory = build()
        memory.load(0, 0, 0x1_0000, 100, speculative=True)
        memory.fetch(0, 0, 0x40_0000, 100, speculative=True)
        assert memory.data_filter(0).occupancy() > 0
        memory.switch_to_process(0, 1)
        assert memory.data_filter(0).occupancy() == 0
        assert memory.inst_filter(0).occupancy() == 0

    def test_squash_clears_only_with_clear_on_misspeculate(self):
        keep = build()
        keep.load(0, 0, 0x1_0000, 100, speculative=True)
        keep.squash(0, 200)
        assert keep.data_filter(0).occupancy() == 1

        protection = ProtectionConfig(clear_on_misspeculate=True)
        clear = build(protection=protection)
        clear.load(0, 0, 0x1_0000, 100, speculative=True)
        clear.squash(0, 200)
        assert clear.data_filter(0).occupancy() == 0

    def test_speculative_fetch_fills_only_instruction_filter(self):
        memory = build()
        memory.fetch(0, 0, 0x40_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x40_0000)
        assert memory.inst_filter(0).contains_physical(physical)
        assert not memory.hierarchy.l1i(0).contains(physical)


class TestCoherenceProtection:
    def test_speculative_access_to_peer_private_line_is_nacked(self):
        memory = build(num_cores=2)
        # Core 0 commits a store, leaving the line Modified in its L1.
        memory.store_address_ready(0, 0, 0x2_0000, 100, speculative=False)
        memory.commit_store(0, 0, 0x2_0000, 120)
        result = memory.load(1, 0, 0x2_0000, 200, speculative=True)
        assert result.must_retry_nonspeculative
        # Once non-speculative, the access succeeds.
        retry = memory.load(1, 0, 0x2_0000, 400, speculative=False)
        assert retry.served

    def test_committed_store_broadcasts_filter_invalidation(self):
        memory = build(num_cores=2)
        # Core 1 speculatively loads the line into its filter cache.
        memory.load(1, 0, 0x3_0000, 100, speculative=True)
        physical = memory.page_tables.address_space(0).translate(0x3_0000)
        assert memory.data_filter(1).contains_physical(physical)
        # Core 0 commits a store to the same line: the broadcast must remove
        # the copy from core 1's filter cache (section 4.5).
        memory.store_address_ready(0, 0, 0x3_0000, 200, speculative=True)
        memory.commit_store(0, 0, 0x3_0000, 300)
        assert not memory.data_filter(1).contains_physical(physical)
        assert memory.store_filter_broadcasts >= 1

    def test_filter_invalidate_rate_between_zero_and_one(self):
        memory = build()
        for index in range(20):
            address = 0x5_0000 + index * 64
            memory.store_address_ready(0, 0, address, 100 + index,
                                       speculative=True)
            memory.commit_store(0, 0, address, 200 + index)
        assert 0.0 <= memory.filter_invalidate_rate() <= 1.0
        assert memory.committed_stores == 20


class TestCommitTimePrefetch:
    def test_speculative_loads_do_not_train_prefetcher(self):
        memory = build()
        for index in range(12):
            memory.load(0, 0, 0x8_0000 + index * 64, 100 + index * 10,
                        speculative=True)
        assert memory.hierarchy.l2_prefetcher.training_events == 0

    def test_committed_loads_do_train_prefetcher(self):
        memory = build()
        for index in range(12):
            address = 0x8_0000 + index * 64
            memory.load(0, 0, address, 100 + index * 10, speculative=True)
            memory.commit_load(0, 0, address, 500 + index * 10)
        assert memory.hierarchy.l2_prefetcher.training_events > 0


class TestDomainTracker:
    def test_transitions_and_counters(self):
        tracker = DomainTracker(core_id=0)
        seen = []
        tracker.on_switch(lambda old, new: seen.append((old.kind, new.kind)))
        tracker.syscall()
        tracker.context_switch(to_process=5)
        tracker.sandbox_entry(sandbox_id=1)
        tracker.sandbox_exit()
        assert tracker.context_switches == 1
        assert tracker.sandbox_entries == 2
        assert seen[0][1] is DomainKind.KERNEL
        assert tracker.current.kind is DomainKind.USER_PROCESS
