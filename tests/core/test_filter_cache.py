"""Tests for the speculative filter cache (the paper's core structure)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import FilterCacheConfig
from repro.core.filter_cache import SpeculativeFilterCache


def make_filter(size=2048, assoc=4):
    return SpeculativeFilterCache(FilterCacheConfig(size_bytes=size,
                                                    associativity=assoc))


class TestFillAndLookup:
    def test_virtual_hit_and_physical_probe(self):
        cache = make_filter()
        cache.fill(virtual_address=0x1000, physical_address=0x8000, now=1,
                   process_id=1)
        assert cache.lookup(0x1000, process_id=1).hit
        assert cache.contains_physical(0x8000)
        assert not cache.contains_physical(0x1000)
        assert cache.lookup(0x1000, process_id=1).latency == 1

    def test_miss_records_statistics(self):
        cache = make_filter()
        assert not cache.lookup(0x4000).hit
        assert cache.misses == 1
        assert cache.hits == 0

    def test_lines_start_uncommitted_when_speculative(self):
        cache = make_filter()
        line = cache.fill(0x1000, 0x8000, now=1, committed=False)
        assert not line.committed
        line = cache.fill(0x2000, 0x9000, now=1, committed=True)
        assert line.committed

    def test_physical_alias_is_removed(self):
        """Only one copy of a physical line may exist (section 4.4)."""
        cache = make_filter()
        cache.fill(0x1000, 0x8000, now=1)
        cache.fill(0x200000, 0x8000, now=2)  # same physical, other virtual
        resident = [line for line in cache.resident_lines()
                    if line.address == 0x8000]
        assert len(resident) == 1
        assert resident[0].virtual_tag == 0x200000

    def test_process_isolation_on_lookup(self):
        cache = make_filter()
        cache.fill(0x1000, 0x8000, now=1, process_id=1)
        assert not cache.lookup(0x1000, process_id=2).hit
        assert cache.lookup(0x1000, process_id=1).hit


class TestCommit:
    def test_mark_committed_sets_bit(self):
        cache = make_filter()
        cache.fill(0x1000, 0x8000, now=1, committed=False, se_upgrade=True,
                   fill_level="l2")
        line = cache.mark_committed(0x1000, now=5)
        assert line is not None and line.committed
        assert line.se_upgrade_pending
        assert line.fill_level == "l2"

    def test_mark_committed_after_eviction_returns_none(self):
        cache = make_filter(size=128, assoc=1)  # 2 lines only
        cache.fill(0x1000, 0x8000, now=1)
        cache.fill(0x1000 + 128, 0x8000 + 128, now=2)
        cache.fill(0x1000 + 256, 0x8000 + 256, now=3)  # evicts the first
        assert cache.mark_committed(0x1000) is None
        assert cache.uncommitted_evictions >= 1


class TestInvalidation:
    def test_flush_clears_everything_in_one_call(self):
        cache = make_filter()
        for index in range(16):
            cache.fill(0x1000 + index * 64, 0x8000 + index * 64, now=index)
        dropped = cache.flush()
        assert dropped == 16
        assert cache.occupancy() == 0
        assert cache.flushes == 1

    def test_snoop_invalidation_by_physical_address(self):
        cache = make_filter()
        cache.fill(0x1000, 0x8000, now=1)
        assert cache.invalidate_physical(0x8000)
        assert not cache.invalidate_physical(0x8000)
        assert cache.occupancy() == 0

    def test_flush_then_refill_works(self):
        cache = make_filter()
        cache.fill(0x1000, 0x8000, now=1)
        cache.flush()
        cache.fill(0x1000, 0x8000, now=2)
        assert cache.lookup(0x1000).hit


class TestCapacity:
    def test_respects_associativity(self):
        cache = make_filter(size=512, assoc=2)  # 8 lines, 4 sets
        set_stride = cache.num_sets * 64
        for way in range(4):
            cache.fill(way * set_stride, 0x10000 + way * set_stride, now=way)
        # Only two of the four conflicting lines can be resident.
        resident = sum(1 for way in range(4)
                       if cache.contains_virtual(way * set_stride))
        assert resident == 2

    def test_evictions_counted(self):
        cache = make_filter(size=128, assoc=1)
        cache.fill(0x0, 0x8000, now=1)
        cache.fill(0x80, 0x8080, now=2)
        cache.fill(0x100, 0x8100, now=3)
        assert cache.stats.get("evictions") >= 1


@settings(max_examples=25, deadline=None)
@given(fills=st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 18),
              st.integers(min_value=0, max_value=1 << 18)),
    min_size=1, max_size=120))
def test_filter_cache_capacity_invariant(fills):
    """Property: occupancy never exceeds the configured number of lines,
    and every physical line appears at most once."""
    cache = make_filter()
    for now, (virtual, physical) in enumerate(fills):
        cache.fill(virtual, physical, now=now)
        assert cache.occupancy() <= cache.config.num_lines
        physical_lines = [line.address for line in cache.resident_lines()]
        assert len(physical_lines) == len(set(physical_lines))


@settings(max_examples=25, deadline=None)
@given(fills=st.lists(st.integers(min_value=0, max_value=1 << 18),
                      min_size=1, max_size=60))
def test_flush_always_empties(fills):
    cache = make_filter(size=256, assoc=4)
    for now, address in enumerate(fills):
        cache.fill(address, address + 0x100000, now=now)
    cache.flush()
    assert cache.occupancy() == 0
