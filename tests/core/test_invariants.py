"""Property-based invariants of the MuonTrap memory system.

These encode the paper's two central guarantees as executable properties:

1. *Speculation leaves no non-speculative trace*: after any sequence of
   speculative loads/fetches followed by a squash and a protection-domain
   switch, no line touched only speculatively is present in the L1, the L2
   or the filter caches.
2. *Committed data is architecturally visible*: a load that commits always
   ends up with its line in the committing core's L1.
"""

from hypothesis import given, settings, strategies as st

from repro.common.params import ProtectionMode, SystemConfig
from repro.core.muontrap import MuonTrapMemorySystem


def build(num_cores=1):
    return MuonTrapMemorySystem(SystemConfig(mode=ProtectionMode.MUONTRAP,
                                             num_cores=num_cores))


addresses = st.lists(
    st.integers(min_value=0, max_value=1 << 20).map(lambda v: 0x10_0000 + v * 8),
    min_size=1, max_size=40)


@settings(max_examples=20, deadline=None)
@given(addresses=addresses)
def test_squashed_speculation_leaves_no_trace_after_domain_switch(addresses):
    memory = build()
    now = 100
    for address in addresses:
        memory.load(0, 0, address, now, speculative=True)
        now += 5
    memory.squash(0, now)
    memory.switch_to_process(0, 1, now)
    space = memory.page_tables.address_space(0)
    for address in addresses:
        physical = space.translate(address)
        assert not memory.data_filter(0).contains_physical(physical)
        assert not memory.hierarchy.l1d(0).contains(physical)
        assert not memory.hierarchy.l2.contains(physical)


@settings(max_examples=20, deadline=None)
@given(addresses=addresses)
def test_committed_loads_always_reach_the_l1(addresses):
    memory = build()
    now = 100
    for address in addresses:
        memory.load(0, 0, address, now, speculative=True)
        memory.commit_load(0, 0, address, now + 300)
        now += 5
    space = memory.page_tables.address_space(0)
    for address in addresses:
        physical = space.translate(address)
        assert memory.hierarchy.l1d(0).contains(physical)


@settings(max_examples=15, deadline=None)
@given(addresses=addresses)
def test_filter_flush_is_complete_and_idempotent(addresses):
    memory = build()
    for index, address in enumerate(addresses):
        memory.load(0, 0, address, 100 + index, speculative=True)
    memory.switch_to_process(0, 1)
    assert memory.data_filter(0).occupancy() == 0
    memory.switch_to_process(0, 2)
    assert memory.data_filter(0).occupancy() == 0
