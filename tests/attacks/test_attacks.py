"""Security tests: every attack leaks on the baseline and fails on MuonTrap."""

import pytest

from repro.attacks import (
    ALL_ATTACKS,
    FilterCacheCoherencyAttack,
    InclusionPolicyAttack,
    InstructionCacheAttack,
    PrefetcherAttack,
    SharedDataCoherenceAttack,
    SpectrePrimeProbeAttack,
    classify_probe,
)
from repro.attacks.framework import AttackEnvironment
from repro.common.params import ProtectionMode

LEAKING_ATTACKS = [SpectrePrimeProbeAttack, InclusionPolicyAttack,
                   SharedDataCoherenceAttack, FilterCacheCoherencyAttack,
                   PrefetcherAttack, InstructionCacheAttack]


@pytest.mark.parametrize("attack_cls", LEAKING_ATTACKS,
                         ids=[cls.name for cls in LEAKING_ATTACKS])
def test_attack_succeeds_on_unprotected_system(attack_cls):
    outcome = attack_cls(mode=ProtectionMode.UNPROTECTED).run()
    assert outcome.succeeded, (
        f"{attack_cls.name} should leak the secret on an unprotected system; "
        f"probe latencies: {outcome.probe_latencies}")


@pytest.mark.parametrize("attack_cls", ALL_ATTACKS,
                         ids=[cls.name for cls in ALL_ATTACKS])
def test_attack_fails_under_muontrap(attack_cls):
    outcome = attack_cls(mode=ProtectionMode.MUONTRAP).run()
    assert not outcome.succeeded, (
        f"{attack_cls.name} must not leak under MuonTrap; probe latencies: "
        f"{outcome.probe_latencies}")


@pytest.mark.parametrize("secret", [0, 1, 5, 7])
def test_spectre_attack_recovers_arbitrary_secret_values(secret):
    outcome = SpectrePrimeProbeAttack(mode=ProtectionMode.UNPROTECTED,
                                      secret=secret).run()
    assert outcome.recovered_secret == secret


@pytest.mark.parametrize("secret", [0, 2, 6])
def test_muontrap_blocks_arbitrary_secret_values(secret):
    outcome = SpectrePrimeProbeAttack(mode=ProtectionMode.MUONTRAP,
                                      secret=secret).run()
    assert not outcome.succeeded


def test_muontrap_probe_timing_is_uniform():
    """Under MuonTrap the attacker's probe latencies carry no signal."""
    outcome = SpectrePrimeProbeAttack(mode=ProtectionMode.MUONTRAP).run()
    latencies = list(outcome.probe_latencies.values())[1:]  # skip TLB-walk one
    assert max(latencies) - min(latencies) < 2


def test_invisispec_still_leaks_through_instruction_cache_or_prefetcher():
    """InvisiSpec protects neither the I-cache nor the prefetcher (section 7)."""
    icache = InstructionCacheAttack(
        mode=ProtectionMode.INVISISPEC_FUTURE).run()
    prefetcher = PrefetcherAttack(mode=ProtectionMode.INVISISPEC_FUTURE).run()
    assert icache.succeeded or prefetcher.succeeded


def test_classify_probe_requires_a_margin():
    assert classify_probe({}) == (None, 0)
    assert classify_probe({0: 10})[0] == 0
    assert classify_probe({0: 10, 1: 11})[0] is None
    value, margin = classify_probe({0: 30, 1: 2, 2: 30})
    assert value == 1 and margin == 28


def test_environment_shares_probe_array_between_processes():
    env = AttackEnvironment(mode=ProtectionMode.UNPROTECTED)
    attacker = env.page_tables.address_space(100)
    victim = env.page_tables.address_space(200)
    assert attacker.translate(env.probe_address(0)) == \
        victim.translate(env.probe_address(0))


def test_attack_outcome_reports_margin():
    outcome = SpectrePrimeProbeAttack(mode=ProtectionMode.UNPROTECTED).run()
    assert outcome.signal_margin >= 0
