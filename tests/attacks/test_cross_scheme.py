"""Asymmetric protection: the (victim scheme × attacker scheme) matrix.

The security property of per-core protection: whether a cross-core channel
leaks depends *only* on the victim core's scheme.  Protecting the
attacker's own core neither opens nor closes the channel, and a MuonTrap
victim stays timing-invariant even when its neighbour is unprotected.

Plus the filter-invalidate ablation: scoping MuonTrap's invalidation
multicast by the snoop filter (``insecure_scoped_invalidate``) leaves a
stale, secret-dependent line in a peer's filter cache — a measurable
timing channel the unscoped broadcast provably closes.
"""

from dataclasses import replace

import pytest

from repro.attacks.cross_core import (
    CROSS_CORE_ATTACKS,
    CrossCoreLLCPrimeProbeAttack,
    CrossCoreReloadAttack,
    run_cross_scheme_matrix,
)
from repro.attacks.framework import (
    CrossCoreAttackEnvironment,
    classify_probe,
)
from repro.common.params import (
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
)

LEAKY = [ProtectionMode.UNPROTECTED, ProtectionMode.INSECURE_L0]
SCHEMES = LEAKY + [ProtectionMode.MUONTRAP]


class TestCrossSchemeMatrix:
    @pytest.mark.parametrize("attacker",
                             SCHEMES, ids=[m.value for m in SCHEMES])
    @pytest.mark.parametrize("victim",
                             SCHEMES, ids=[m.value for m in SCHEMES])
    def test_leak_depends_only_on_the_victim_scheme(self, victim, attacker):
        for attack_cls in CROSS_CORE_ATTACKS:
            outcome = attack_cls(victim_mode=victim, attacker_mode=attacker,
                                 seed=0).run()
            assert outcome.mode == (
                f"victim={victim.value},attacker={attacker.value}")
            if victim in LEAKY:
                assert outcome.succeeded, (
                    f"{outcome.mode} should leak via {attack_cls.name}: "
                    f"{outcome.probe_latencies}")
            else:
                assert outcome.recovered_secret is None, (
                    f"{outcome.mode} leaked via {attack_cls.name}: "
                    f"{outcome.probe_latencies}")

    def test_muontrap_victim_is_timing_invariant_beside_unprotected(self):
        """Stronger than 'no winner': with an *unprotected* attacker core
        on the same fabric, a MuonTrap victim's probe timing does not
        depend on the secret at all."""
        latencies = [
            CrossCoreReloadAttack(victim_mode=ProtectionMode.MUONTRAP,
                                  attacker_mode=ProtectionMode.UNPROTECTED,
                                  secret=secret, seed=0).run().probe_latencies
            for secret in range(4)
        ]
        assert all(entry == latencies[0] for entry in latencies[1:])

    @pytest.mark.slow
    @pytest.mark.parametrize("writer_mode", LEAKY,
                             ids=[m.value for m in LEAKY])
    def test_unprotected_writers_still_invalidate_peer_filters(
            self, writer_mode):
        """The invalidation multicast is a fabric property: a committed
        store by an *unprotected* core must still invalidate a MuonTrap
        peer's speculatively filled filter line — otherwise the stale copy
        is a secret-dependent 1-cycle hit, the very channel the broadcast
        exists to close."""
        env = CrossCoreAttackEnvironment(
            core_modes=[writer_mode, ProtectionMode.MUONTRAP], secret=2)
        env.victim_speculative_touch([env.probe_address(env.secret)])
        for value in range(env.num_secret_values):
            env.attacker_store(env.probe_address(value))
        latencies = env.victim_probe_latencies()
        recovered, _ = classify_probe(latencies)
        assert recovered is None, latencies
        assert len(set(latencies.values())) == 1
        victim_frontend = env.system.memory_system.frontend(env.VICTIM_CORE)
        assert victim_frontend.data_filter(env.VICTIM_CORE).probe_physical(
            env.shared_physical(env.probe_address(env.secret))) is None

    def test_matrix_runner_covers_every_pair_deterministically(self):
        first = run_cross_scheme_matrix(SCHEMES, SCHEMES, seeds=(0,))
        second = run_cross_scheme_matrix(SCHEMES, SCHEMES, seeds=(0,))
        assert set(first) == {
            (attack.name, victim.value, attacker.value, 0)
            for attack in CROSS_CORE_ATTACKS
            for victim in SCHEMES for attacker in SCHEMES}
        for key, outcome in first.items():
            assert outcome.probe_latencies == second[key].probe_latencies
            _, victim_value, _, _ = key
            leaky = victim_value != ProtectionMode.MUONTRAP.value
            assert outcome.succeeded == leaky, key

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [1])
    def test_matrix_holds_on_wider_machines_and_other_seeds(self, seed):
        outcomes = run_cross_scheme_matrix(
            SCHEMES, [ProtectionMode.MUONTRAP], seeds=(seed,), num_cores=4)
        for (name, victim_value, _, _), outcome in outcomes.items():
            leaky = victim_value != ProtectionMode.MUONTRAP.value
            assert outcome.succeeded == leaky, (name, victim_value)


def _scoped_environment(scoped: bool,
                        secret: int = 3) -> CrossCoreAttackEnvironment:
    config = SystemConfig(protection=ProtectionConfig(
        insecure_scoped_invalidate=scoped))
    return CrossCoreAttackEnvironment(mode=ProtectionMode.MUONTRAP,
                                      secret=secret, config=config)


def _stale_filter_channel(scoped: bool, secret: int = 3):
    """Victim speculates on the secret line, attacker stores to every
    candidate; return the classification of the victim's reload timing."""
    env = _scoped_environment(scoped, secret=secret)
    env.victim_speculative_touch([env.probe_address(env.secret)])
    for value in range(env.num_secret_values):
        env.attacker_store(env.probe_address(value))
    latencies = env.victim_probe_latencies()
    return classify_probe(latencies), latencies, env


class TestScopedInvalidateAblation:
    def test_flag_defaults_off_and_reaches_the_bus(self):
        closed = _scoped_environment(False)
        opened = _scoped_environment(True)
        assert not closed.system.hierarchy.bus.scoped_filter_invalidate
        assert opened.system.hierarchy.bus.scoped_filter_invalidate
        assert not ProtectionConfig().insecure_scoped_invalidate

    @pytest.mark.parametrize("secret", [1, 3, 6])
    def test_scoped_invalidate_reintroduces_a_timing_channel(self, secret):
        (recovered, margin), latencies, env = _stale_filter_channel(
            True, secret=secret)
        assert recovered == secret, latencies
        assert margin >= 2
        # The mechanism: the victim's filter cache still holds the stale
        # secret-dependent line the scoped multicast failed to reach.
        memory = env.system.memory_system
        line = memory.data_filter(env.VICTIM_CORE).probe_physical(
            env.shared_physical(env.probe_address(secret)))
        assert line is not None and line.valid

    @pytest.mark.parametrize("secret", [1, 3, 6])
    def test_unscoped_broadcast_closes_the_channel(self, secret):
        (recovered, margin), latencies, env = _stale_filter_channel(
            False, secret=secret)
        assert recovered is None, latencies
        # Uniform timing: every candidate pays the same reload latency.
        assert len(set(latencies.values())) == 1
        memory = env.system.memory_system
        assert memory.data_filter(env.VICTIM_CORE).probe_physical(
            env.shared_physical(env.probe_address(secret))) is None

    def test_scoping_still_multicasts_when_directory_shows_a_peer_copy(self):
        """The ablation's gate is the *pre-upgrade* directory verdict: when
        a peer provably holds a non-speculative copy, the multicast must
        still go out (and reach the peer's filter) even though the
        upgrade's own invalidations purge that directory entry."""
        from repro.cpu.instructions import MicroOp, OpKind

        env = _scoped_environment(True)
        address = env.probe_address(0)
        # A committed victim load: the line lands in the victim's filter
        # *and* (via write-through-at-commit) its L1, so the snoop-filter
        # directory records the victim as a sharer.
        env.victim.execute_op(MicroOp(kind=OpKind.LOAD, pc=env.VICTIM_CODE,
                                      address=address, dst_reg=7))
        bus = env.system.hierarchy.bus
        before = bus.filter_broadcasts
        env.attacker_store(address)
        assert bus.filter_broadcasts > before
        memory = env.system.memory_system
        assert memory.data_filter(env.VICTIM_CORE).probe_physical(
            env.shared_physical(address)) is None

    def test_scoping_skips_broadcasts_the_full_multicast_sends(self):
        """The ablation's 'saving' is real: the bus performs strictly
        fewer filter-invalidate multicasts when scoped — that traffic
        reduction is exactly what the timing channel pays for."""
        _, _, full = _stale_filter_channel(False)
        _, _, scoped = _stale_filter_channel(True)
        assert (scoped.system.hierarchy.bus.filter_broadcasts
                < full.system.hierarchy.bus.filter_broadcasts)
