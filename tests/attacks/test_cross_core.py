"""The cross-core attack suite, driven through the real coherence fabric.

Acceptance matrix of the co-run work: on at least 2 cores and 2 seeds, the
unprotected and insecure-L0 systems leak the secret across cores while
MuonTrap blocks it — deterministically, with every transmission and probe
executed by real out-of-order cores against the shared bus/snoop-filter/LLC
fabric rather than by driving a memory system directly.
"""

import pytest

from repro.attacks.cross_core import (
    CROSS_CORE_ATTACKS,
    CrossCoreLLCPrimeProbeAttack,
    CrossCoreReloadAttack,
    classify_contention,
    run_cross_core_suite,
)
from repro.common.params import ProtectionMode

LEAKY_MODES = [ProtectionMode.UNPROTECTED, ProtectionMode.INSECURE_L0]
SEEDS = [0, 1]
CORE_COUNTS = [2, 4]


class TestCrossCoreReload:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    @pytest.mark.parametrize("mode", LEAKY_MODES,
                             ids=[mode.value for mode in LEAKY_MODES])
    def test_insecure_systems_leak_across_cores(self, mode, num_cores, seed):
        for secret in (1, 5):
            outcome = CrossCoreReloadAttack(mode=mode, secret=secret,
                                            num_cores=num_cores,
                                            seed=seed).run()
            assert outcome.succeeded, (
                f"{mode.value} should leak: {outcome.probe_latencies}")
            assert outcome.recovered_secret == secret
            assert outcome.signal_margin >= 2

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    def test_muontrap_blocks_the_channel(self, num_cores, seed):
        for secret in (1, 5):
            outcome = CrossCoreReloadAttack(mode=ProtectionMode.MUONTRAP,
                                            secret=secret,
                                            num_cores=num_cores,
                                            seed=seed).run()
            assert outcome.recovered_secret is None, (
                f"muontrap leaked: {outcome.probe_latencies}")
            assert not outcome.succeeded

    def test_muontrap_probe_timing_is_secret_invariant(self):
        """The stronger property: probe latencies do not depend on the
        secret at all, not merely 'no single value stands out'."""
        latencies = [
            CrossCoreReloadAttack(mode=ProtectionMode.MUONTRAP,
                                  secret=secret, seed=0).run().probe_latencies
            for secret in range(4)
        ]
        assert all(entry == latencies[0] for entry in latencies[1:])


class TestCrossCoreLLCPrimeProbe:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", LEAKY_MODES,
                             ids=[mode.value for mode in LEAKY_MODES])
    def test_contention_channel_leaks_on_insecure_systems(self, mode, seed):
        for secret in (0, 2):
            outcome = CrossCoreLLCPrimeProbeAttack(mode=mode, secret=secret,
                                                   seed=seed).run()
            assert outcome.succeeded, (
                f"{mode.value} should leak: {outcome.probe_latencies}")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_muontrap_leaves_no_llc_footprint(self, seed):
        for secret in (0, 2):
            outcome = CrossCoreLLCPrimeProbeAttack(
                mode=ProtectionMode.MUONTRAP, secret=secret, seed=seed).run()
            assert outcome.recovered_secret is None, (
                f"muontrap leaked: {outcome.probe_latencies}")

    def test_classify_contention_picks_slowest(self):
        assert classify_contention({0: 10, 1: 300, 2: 12}) == (1, 288)
        assert classify_contention({0: 10, 1: 11}) == (None, 1)


class TestCrossCoreSuite:
    def test_suite_runs_the_full_matrix_deterministically(self):
        modes = LEAKY_MODES + [ProtectionMode.MUONTRAP]
        first = run_cross_core_suite(modes, seeds=SEEDS, num_cores=2)
        second = run_cross_core_suite(modes, seeds=SEEDS, num_cores=2)
        assert set(first) == {
            (attack.name, mode.value, seed)
            for attack in CROSS_CORE_ATTACKS
            for mode in modes for seed in SEEDS
        }
        for key, outcome in first.items():
            attack_name, mode_value, _ = key
            rerun = second[key]
            assert outcome.probe_latencies == rerun.probe_latencies, key
            assert outcome.recovered_secret == rerun.recovered_secret, key
            if mode_value == ProtectionMode.MUONTRAP.value:
                assert not outcome.succeeded, key
            else:
                assert outcome.succeeded, key
