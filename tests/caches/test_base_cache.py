"""Tests for the set-associative cache, replacement policies and MSHRs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.caches.base_cache import SetAssociativeCache
from repro.caches.cache_line import CacheLine
from repro.caches.mshr import MSHRFile
from repro.caches.replacement import (
    LRUReplacement,
    RandomReplacement,
    TreePLRUReplacement,
    make_replacement_policy,
)
from repro.caches.write_buffer import WriteBuffer
from repro.coherence.states import E, I, M, S
from repro.common.params import CacheConfig
from repro.common.rng import DeterministicRng


def small_cache(size=1024, assoc=2, line=64, name="l1"):
    return SetAssociativeCache(CacheConfig(name=name, size_bytes=size,
                                           associativity=assoc,
                                           line_size=line, hit_latency=2))


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x1000) is None
        cache.fill(0x1000, S, now=1)
        line = cache.lookup(0x1040 - 0x40)
        assert line is not None and line.state is S
        assert cache.contains(0x1010)  # same line, different offset

    def test_fill_existing_upgrades_state(self):
        cache = small_cache()
        cache.fill(0x2000, S, now=1)
        cache.fill(0x2000, M, now=2, dirty=True)
        assert cache.state_of(0x2000) is M
        assert cache.occupancy() == 1

    def test_lru_eviction_within_set(self):
        cache = small_cache(size=256, assoc=2, line=64)  # 2 sets, 2 ways
        set_stride = cache.num_sets * 64
        a, b, c = 0x0, set_stride, 2 * set_stride  # all map to set 0
        cache.fill(a, S, now=1)
        cache.fill(b, S, now=2)
        cache.lookup(a, now=3)          # make b the LRU
        _, victim = cache.fill(c, S, now=4)
        assert victim is not None and victim.address == b
        assert cache.contains(a) and cache.contains(c) and not cache.contains(b)

    def test_dirty_eviction_invokes_writeback(self):
        cache = small_cache(size=128, assoc=1, line=64)
        written_back = []
        cache.fill(0x0, M, now=1, dirty=True)
        cache.fill(0x80, S, now=2,
                   writeback_handler=lambda line: written_back.append(
                       line.address))
        assert written_back == [0x0]

    def test_invalidate_and_flush(self):
        cache = small_cache()
        cache.fill(0x1000, E, now=1)
        cache.fill(0x2000, S, now=1)
        assert cache.invalidate(0x1000)
        assert not cache.invalidate(0x9999_0000)
        assert cache.flush_all() == 1
        assert cache.occupancy() == 0

    def test_downgrade_and_upgrade(self):
        cache = small_cache()
        cache.fill(0x1000, M, now=1, dirty=True)
        assert cache.downgrade(0x1000, S) is M
        assert cache.state_of(0x1000) is S
        assert cache.upgrade(0x1000, M)
        assert cache.state_of(0x1000) is M
        assert cache.downgrade(0x5000) is None

    def test_probe_does_not_update_lru(self):
        cache = small_cache(size=128, assoc=2, line=64)
        cache.fill(0x0, S, now=1)
        cache.fill(0x80, S, now=2)
        cache.probe(0x0)                 # must NOT refresh line 0x0
        _, victim = cache.fill(0x100, S, now=3)
        assert victim.address == 0x0


class TestReplacementPolicies:
    def test_factory(self):
        rng = DeterministicRng(0)
        assert isinstance(make_replacement_policy("lru", 4, rng),
                          LRUReplacement)
        assert isinstance(make_replacement_policy("random", 4, rng),
                          RandomReplacement)
        assert isinstance(make_replacement_policy("plru", 4, rng),
                          TreePLRUReplacement)
        with pytest.raises(ValueError):
            make_replacement_policy("fifo", 4, rng)

    def test_lru_picks_oldest(self):
        policy = LRUReplacement()
        lines = [CacheLine(address=i, state=S, last_use=use)
                 for i, use in enumerate([5, 2, 9, 7])]
        assert policy.victim(0, lines) == 1

    def test_plru_victim_avoids_most_recent(self):
        policy = TreePLRUReplacement(4)
        lines = [CacheLine(address=i, state=S) for i in range(4)]
        policy.on_access(0, 2, now=1)
        assert policy.victim(0, lines) != 2

    def test_random_in_range(self):
        policy = RandomReplacement(DeterministicRng(1))
        lines = [CacheLine(address=i, state=S) for i in range(8)]
        assert all(0 <= policy.victim(0, lines) < 8 for _ in range(20))


class TestMSHRs:
    def test_merge_same_line(self):
        mshrs = MSHRFile(2)
        first = mshrs.allocate(0x100, now=0, fill_latency=50)
        second = mshrs.allocate(0x100, now=10, fill_latency=50)
        assert first is second
        assert second.merged_requests == 2
        assert mshrs.merges == 1

    def test_full_file_delays_issue(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0x100, now=0, fill_latency=100)
        entry = mshrs.allocate(0x200, now=10, fill_latency=100)
        assert entry.issue_time >= 100
        assert mshrs.full_stalls == 1

    def test_entries_expire(self):
        mshrs = MSHRFile(2)
        mshrs.allocate(0x100, now=0, fill_latency=10)
        assert mshrs.lookup(0x100, now=5) is not None
        assert mshrs.lookup(0x100, now=20) is None
        assert mshrs.occupancy(20) == 0

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MSHRFile(0)


class TestWriteBuffer:
    def test_no_stall_when_room(self):
        buffer = WriteBuffer(entries=2)
        assert buffer.push(0x100, now=0, drain_latency=10) == 0
        assert buffer.push(0x200, now=1, drain_latency=10) == 0
        assert buffer.occupancy(1) == 2

    def test_stall_when_full(self):
        buffer = WriteBuffer(entries=1)
        buffer.push(0x100, now=0, drain_latency=50)
        stall = buffer.push(0x200, now=10, drain_latency=50)
        assert stall > 0
        assert buffer.full_stalls == 1


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                          min_size=1, max_size=200))
def test_cache_occupancy_never_exceeds_capacity(addresses):
    """Property: a cache never holds more lines than its geometry allows."""
    cache = small_cache(size=512, assoc=2, line=64)
    for now, address in enumerate(addresses):
        cache.fill(address, S, now=now)
        assert cache.occupancy() <= cache.config.num_lines
        assert cache.contains(address)


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 16),
                          min_size=1, max_size=100))
def test_flush_leaves_cache_empty(addresses):
    cache = small_cache(size=1024, assoc=4, line=64)
    for now, address in enumerate(addresses):
        cache.fill(address, E, now=now)
    cache.flush_all()
    assert cache.occupancy() == 0
    assert all(not cache.contains(address) for address in addresses)
