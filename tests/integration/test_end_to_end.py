"""End-to-end integration tests across the whole stack.

These are small versions of the paper's experiments: they run real workload
traces through the full simulator under several protection modes and check
the qualitative relationships the paper reports, plus the experiment and
table drivers used by the benchmark harness.
"""

import pytest

from repro.common.params import ProtectionMode, SystemConfig
from repro.experiments.figures import figure4, figure7
from repro.experiments.security import run_security_evaluation
from repro.experiments.table1 import format_table1, table1_as_dict
from repro.sim.runner import ExperimentRunner, standard_modes, unprotected_config


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(instructions=900)


class TestPerformanceRelationships:
    def test_every_mode_completes_a_spec_workload(self, runner):
        baseline = runner.run_benchmark("hmmer", unprotected_config())
        assert baseline.result.cycles > 0
        for label, config in standard_modes().items():
            run = runner.run_benchmark("hmmer", config, label=label)
            ratio = run.result.cycles / baseline.result.cycles
            assert 0.5 < ratio < 3.0, f"{label} ratio {ratio} implausible"

    def test_muontrap_cheaper_than_invisispec_future_on_parsec(self, runner):
        baseline = runner.run_benchmark("streamcluster",
                                        unprotected_config(num_cores=4))
        muontrap = runner.run_benchmark(
            "streamcluster",
            SystemConfig(mode=ProtectionMode.MUONTRAP, num_cores=4),
            label="mt")
        invisispec = runner.run_benchmark(
            "streamcluster",
            SystemConfig(mode=ProtectionMode.INVISISPEC_FUTURE, num_cores=4),
            label="isf")
        assert muontrap.result.cycles <= invisispec.result.cycles * 1.05
        assert baseline.result.cycles > 0

    def test_clear_on_misspeculate_costs_something(self, runner):
        from repro.common.params import ProtectionConfig
        base = SystemConfig(mode=ProtectionMode.MUONTRAP)
        clearing = base.with_protection(
            ProtectionConfig(clear_on_misspeculate=True))
        normal = runner.run_benchmark("gobmk", base, label="mt")
        cleared = runner.run_benchmark("gobmk", clearing, label="mt-clear")
        assert cleared.result.cycles >= normal.result.cycles * 0.97


class TestExperimentDrivers:
    def test_figure4_structure(self, runner):
        result = figure4(runner, benchmarks=["swaptions", "blackscholes"])
        assert set(result.series) == set(standard_modes())
        assert set(result.benchmarks) == {"swaptions", "blackscholes"}
        assert all(value > 0 for series in result.series.values()
                   for value in series.values())
        table = result.format_table()
        assert "geomean" in table

    def test_figure7_rates_are_proportions(self, runner):
        result = figure7(runner, benchmarks=["gcc", "lbm", "povray"])
        rates = result.series["write fcache-invalidate rate"]
        assert set(rates) == {"gcc", "lbm", "povray"}
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_table1_matches_configuration(self):
        entries = table1_as_dict()
        assert entries["Core count"] == "1 cores"
        assert "192-entry ROB" in entries["Pipeline"]
        assert "2MiB" in entries["L2 Cache"]
        assert "8-wide" in format_table1()


class TestSecurityEvaluation:
    def test_security_matrix_matches_paper_claims(self):
        matrix = run_security_evaluation()
        assert matrix.unprotected_leaks_everything
        assert matrix.muontrap_blocks_everything
        table = matrix.format_table()
        assert "LEAK" in table and "safe" in table
