"""Golden equivalence: all three execution engines must match bit-for-bit.

The packed-trace fast path (`OutOfOrderCore.run_packed`) re-implements the
per-instruction semantics of `execute_op` as a zero-allocation loop, and
the plan-driven engine (`OutOfOrderCore.run_vectorized`) re-implements
*that* with batched simple-op runs and numpy array recurrences.  These
tests pin the contract down: for every protection scheme the paper
evaluates, running the same workload through the per-op, packed and
vectorized engines must produce a **bit-identical** `SimulationResult` —
cycles, instructions, warmup cycles, per-core results and the complete
statistics tree.  Any divergence, however small, is a bug in one of the
engines.
"""

import pytest

from repro.common.params import (
    ProtectionMode,
    SystemConfig,
    corun_system_config,
)
from repro.harness.suites import resolve_suites
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.mixes import get_machine
from repro.workloads.profiles import get_profile

#: The five schemes of the acceptance matrix (Figures 3 and 4).
SCHEMES = [
    ProtectionMode.UNPROTECTED,
    ProtectionMode.INSECURE_L0,
    ProtectionMode.MUONTRAP,
    ProtectionMode.INVISISPEC_SPECTRE,
    ProtectionMode.STT_SPECTRE,
]

SEEDS = [7, 1234]

#: A cross-section of the ``mixed`` suite: integer SPEC, floating-point
#: SPEC (including the prefetcher-sensitive lbm and the associativity-
#: sensitive cactusADM) and a four-threaded Parsec workload.
CROSS_SECTION = ["mcf", "omnetpp", "lbm", "cactusADM", "streamcluster"]

INSTRUCTIONS = 500

#: Simulator constructor arguments selecting each engine.
ENGINES = {
    "per-op": {"use_packed": False},
    "packed": {"use_packed": True, "use_vectorized": False},
    "vectorized": {"use_packed": True, "use_vectorized": True},
}


def _simulate(config: SystemConfig, profile, seed: int,
              engine: str) -> SimulationResult:
    workload = generate_workload(profile, INSTRUCTIONS, seed=seed)
    simulator = Simulator(build_system(config, seed=seed), **ENGINES[engine])
    return simulator.run(workload, collect_stats=True, warmup_fraction=0.35)


def _run(mode: ProtectionMode, benchmark: str, seed: int,
         engine: str) -> SimulationResult:
    profile = get_profile(benchmark)
    config = SystemConfig(mode=mode).with_cores(max(1, profile.num_threads))
    return _simulate(config, profile, seed, engine)


def _assert_identical(candidate: SimulationResult, per_op: SimulationResult,
                      context: str) -> None:
    assert candidate.cycles == per_op.cycles, context
    assert candidate.instructions == per_op.instructions, context
    assert candidate.warmup_cycles == per_op.warmup_cycles, context
    assert candidate.core_results == per_op.core_results, context
    # The full statistics tree, key by key, so a mismatch names the stat.
    assert set(candidate.stats) == set(per_op.stats), context
    for key, value in per_op.stats.items():
        assert candidate.stats[key] == value, f"{context}: {key}"


def _assert_three_way(runner, context: str) -> None:
    """per-op ≡ packed ≡ vectorized for one (config, workload, seed)."""
    per_op = runner("per-op")
    for engine in ("packed", "vectorized"):
        _assert_identical(runner(engine), per_op, f"{context}/{engine}")


class TestPackedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", SCHEMES,
                             ids=[mode.value for mode in SCHEMES])
    def test_every_scheme_bit_identical_across_cross_section(self, mode,
                                                             seed):
        for benchmark in CROSS_SECTION:
            _assert_three_way(
                lambda engine: _run(mode, benchmark, seed, engine),
                f"{mode.value}/{benchmark}/seed={seed}")

    def test_full_mixed_suite_bit_identical(self):
        """Every benchmark of the ``mixed`` suite under the full defence."""
        for benchmark in resolve_suites(["mixed"]):
            _assert_three_way(
                lambda engine: _run(ProtectionMode.MUONTRAP, benchmark,
                                    SEEDS[0], engine),
                f"mixed/{benchmark}")

    def test_invisispec_future_and_stt_future_bit_identical(self):
        """The -Future variants exercise distinct visibility-point logic."""
        for mode in (ProtectionMode.INVISISPEC_FUTURE,
                     ProtectionMode.STT_FUTURE):
            for benchmark in ("mcf", "lbm"):
                _assert_three_way(
                    lambda engine: _run(mode, benchmark, SEEDS[1], engine),
                    f"{mode.value}/{benchmark}")


class TestHeterogeneousEquivalence:
    """big.LITTLE machine presets through all three engines.

    Heterogeneous machines stress what homogeneous runs cannot: per-core
    pipeline widths and ROB capacities (the batched dispatch/commit
    recurrences must honour each core's own width), per-core protection
    modes (an unprotected LITTLE core beside an STT big core), and the
    hetero memory system's ``commit_fetch`` override, which disables the
    vectorized engine's no-op-elision fast path.
    """

    PRESETS = ["biglittle-muontrap", "biglittle-asym"]

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_biglittle_presets_bit_identical(self, preset, seed):
        config = get_machine(preset)
        profile = get_profile("mix-pointer-stream")
        _assert_three_way(
            lambda engine: _simulate(config, profile, seed, engine),
            f"{preset}/seed={seed}")


def _run_corun(mode: ProtectionMode, mix: str, seed: int,
               engine: str) -> SimulationResult:
    profile = get_profile(mix)
    config = corun_system_config(mode=mode, num_cores=profile.num_threads)
    return _simulate(config, profile, seed, engine)


class TestCoRunPackedEquivalence:
    """Multi-programmed co-run mixes through all engines, bit-identical.

    This covers the whole co-run machinery — per-core private L1/L2
    hierarchies, the snoop-filtered coherence bus, the shared LLC, distinct
    address spaces per constituent — under every execution engine.
    """

    #: Two mixes chosen to cover 2-core and 4-core systems.
    MIXES = ["mix-pointer-stream", "mix-quad"]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", SCHEMES,
                             ids=[mode.value for mode in SCHEMES])
    def test_corun_bit_identical_across_engines(self, mode, seed):
        for mix in self.MIXES:
            per_op = _run_corun(mode, mix, seed, "per-op")
            for engine in ("packed", "vectorized"):
                candidate = _run_corun(mode, mix, seed, engine)
                _assert_identical(candidate, per_op,
                                  f"{mode.value}/{mix}/{seed}/{engine}")
                assert candidate.core_benchmarks == per_op.core_benchmarks
                assert candidate.is_corun

    def test_corun_deterministic_across_runs(self):
        """The same spec twice gives byte-identical results."""
        first = _run_corun(ProtectionMode.MUONTRAP, "mix-pointer-stream",
                           SEEDS[0], "vectorized")
        second = _run_corun(ProtectionMode.MUONTRAP, "mix-pointer-stream",
                            SEEDS[0], "vectorized")
        _assert_identical(first, second, "determinism")

    @pytest.mark.slow
    def test_all_mixes_all_schemes_bit_identical(self):
        """The broad sweep: every mix under every scheme (tier-2)."""
        for mix in resolve_suites(["mixes"]):
            for mode in SCHEMES:
                _assert_three_way(
                    lambda engine: _run_corun(mode, mix, SEEDS[0], engine),
                    f"{mode.value}/{mix}")
