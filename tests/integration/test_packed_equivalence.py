"""Golden equivalence: the packed engine must match the per-op engine.

The packed-trace fast path (`OutOfOrderCore.run_packed`) re-implements the
per-instruction semantics of `execute_op` as a zero-allocation loop.  These
tests pin the contract down: for every protection scheme the paper
evaluates, running the same workload through both engines must produce a
**bit-identical** `SimulationResult` — cycles, instructions, warmup cycles,
per-core results and the complete statistics tree.  Any divergence, however
small, is a bug in one of the engines.
"""

import pytest

from repro.common.params import (
    ProtectionMode,
    SystemConfig,
    corun_system_config,
)
from repro.harness.suites import resolve_suites
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile

#: The five schemes of the acceptance matrix (Figures 3 and 4).
SCHEMES = [
    ProtectionMode.UNPROTECTED,
    ProtectionMode.INSECURE_L0,
    ProtectionMode.MUONTRAP,
    ProtectionMode.INVISISPEC_SPECTRE,
    ProtectionMode.STT_SPECTRE,
]

SEEDS = [7, 1234]

#: A cross-section of the ``mixed`` suite: integer SPEC, floating-point
#: SPEC (including the prefetcher-sensitive lbm and the associativity-
#: sensitive cactusADM) and a four-threaded Parsec workload.
CROSS_SECTION = ["mcf", "omnetpp", "lbm", "cactusADM", "streamcluster"]

INSTRUCTIONS = 500


def _run(mode: ProtectionMode, benchmark: str, seed: int,
         use_packed: bool) -> SimulationResult:
    profile = get_profile(benchmark)
    config = SystemConfig(mode=mode).with_cores(max(1, profile.num_threads))
    workload = generate_workload(profile, INSTRUCTIONS, seed=seed)
    simulator = Simulator(build_system(config, seed=seed),
                          use_packed=use_packed)
    return simulator.run(workload, collect_stats=True, warmup_fraction=0.35)


def _assert_identical(packed: SimulationResult, per_op: SimulationResult,
                      context: str) -> None:
    assert packed.cycles == per_op.cycles, context
    assert packed.instructions == per_op.instructions, context
    assert packed.warmup_cycles == per_op.warmup_cycles, context
    assert packed.core_results == per_op.core_results, context
    # The full statistics tree, key by key, so a mismatch names the stat.
    assert set(packed.stats) == set(per_op.stats), context
    for key, value in per_op.stats.items():
        assert packed.stats[key] == value, f"{context}: {key}"


class TestPackedEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", SCHEMES,
                             ids=[mode.value for mode in SCHEMES])
    def test_every_scheme_bit_identical_across_cross_section(self, mode,
                                                             seed):
        for benchmark in CROSS_SECTION:
            packed = _run(mode, benchmark, seed, use_packed=True)
            per_op = _run(mode, benchmark, seed, use_packed=False)
            _assert_identical(packed, per_op,
                              f"{mode.value}/{benchmark}/seed={seed}")

    def test_full_mixed_suite_bit_identical(self):
        """Every benchmark of the ``mixed`` suite under the full defence."""
        for benchmark in resolve_suites(["mixed"]):
            packed = _run(ProtectionMode.MUONTRAP, benchmark, SEEDS[0],
                          use_packed=True)
            per_op = _run(ProtectionMode.MUONTRAP, benchmark, SEEDS[0],
                          use_packed=False)
            _assert_identical(packed, per_op, f"mixed/{benchmark}")

    def test_invisispec_future_and_stt_future_bit_identical(self):
        """The -Future variants exercise distinct visibility-point logic."""
        for mode in (ProtectionMode.INVISISPEC_FUTURE,
                     ProtectionMode.STT_FUTURE):
            for benchmark in ("mcf", "lbm"):
                packed = _run(mode, benchmark, SEEDS[1], use_packed=True)
                per_op = _run(mode, benchmark, SEEDS[1], use_packed=False)
                _assert_identical(packed, per_op, f"{mode.value}/{benchmark}")


def _run_corun(mode: ProtectionMode, mix: str, seed: int,
               use_packed: bool) -> SimulationResult:
    profile = get_profile(mix)
    config = corun_system_config(mode=mode, num_cores=profile.num_threads)
    workload = generate_workload(profile, INSTRUCTIONS, seed=seed)
    simulator = Simulator(build_system(config, seed=seed),
                          use_packed=use_packed)
    return simulator.run(workload, collect_stats=True, warmup_fraction=0.35)


class TestCoRunPackedEquivalence:
    """Multi-programmed co-run mixes through both engines, bit-identical.

    This covers the whole co-run machinery — per-core private L1/L2
    hierarchies, the snoop-filtered coherence bus, the shared LLC, distinct
    address spaces per constituent — under both execution engines.
    """

    #: Two mixes chosen to cover 2-core and 4-core systems.
    MIXES = ["mix-pointer-stream", "mix-quad"]

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", SCHEMES,
                             ids=[mode.value for mode in SCHEMES])
    def test_corun_bit_identical_across_engines(self, mode, seed):
        for mix in self.MIXES:
            packed = _run_corun(mode, mix, seed, use_packed=True)
            per_op = _run_corun(mode, mix, seed, use_packed=False)
            _assert_identical(packed, per_op, f"{mode.value}/{mix}/{seed}")
            assert packed.core_benchmarks == per_op.core_benchmarks
            assert packed.is_corun

    def test_corun_deterministic_across_runs(self):
        """The same spec twice gives byte-identical results."""
        first = _run_corun(ProtectionMode.MUONTRAP, "mix-pointer-stream",
                           SEEDS[0], use_packed=True)
        second = _run_corun(ProtectionMode.MUONTRAP, "mix-pointer-stream",
                            SEEDS[0], use_packed=True)
        _assert_identical(first, second, "determinism")

    @pytest.mark.slow
    def test_all_mixes_all_schemes_bit_identical(self):
        """The broad sweep: every mix under every scheme (tier-2)."""
        for mix in resolve_suites(["mixes"]):
            for mode in SCHEMES:
                packed = _run_corun(mode, mix, SEEDS[0], use_packed=True)
                per_op = _run_corun(mode, mix, SEEDS[0], use_packed=False)
                _assert_identical(packed, per_op, f"{mode.value}/{mix}")
