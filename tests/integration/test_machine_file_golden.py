"""Acceptance: a preset exported to JSON re-runs to its golden snapshot.

``get_machine("biglittle-muontrap")`` is exported with ``to_dict``, written
to a JSON machine file, loaded back through the ``--machine-file`` code
path, and simulated — and the result must reproduce the same golden
snapshot (``stats_hetero-biglittle-muontrap.json``) that pins the
in-memory preset.  This closes the loop on the declarative machine
format: the file on disk *is* the machine.
"""

import json
from pathlib import Path

from repro import api
from repro.__main__ import main as cli_main
from repro.common.machine import save_machine
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.mixes import get_machine
from repro.workloads.profiles import get_profile

GOLDEN = Path(__file__).parent / "golden" \
    / "stats_hetero-biglittle-muontrap.json"
SEED = 1234
INSTRUCTIONS = 400
WARMUP_FRACTION = 0.25


class TestMachineFileGolden:
    def test_exported_machine_file_reproduces_the_golden_snapshot(
            self, tmp_path):
        path = save_machine(get_machine("biglittle-muontrap"),
                            tmp_path / "biglittle-muontrap.json")
        config = api.resolve_machine(str(path))  # the --machine-file path
        assert config == get_machine("biglittle-muontrap")

        profile = get_profile("mix-pointer-stream")
        workload = generate_workload(profile, INSTRUCTIONS, seed=SEED)
        system_config = config.with_cores(max(config.num_cores,
                                              profile.num_threads, 1))
        result = Simulator(build_system(system_config, seed=SEED)).run(
            workload, collect_stats=True, warmup_fraction=WARMUP_FRACTION)

        golden = json.loads(GOLDEN.read_text())
        assert result.cycles == golden["cycles"]
        assert result.instructions == golden["instructions"]
        assert result.warmup_cycles == golden["warmup_cycles"]
        assert result.mode == golden["mode"]
        assert dict(sorted(result.stats.items())) == golden["stats"]

    def test_cli_runs_a_machine_file(self, tmp_path, capsys, monkeypatch):
        path = save_machine(get_machine("biglittle-muontrap"),
                            tmp_path / "exported.json")
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "600")
        assert cli_main(["run", "--suite", "mix-pointer-stream",
                         "--machine-file", str(path),
                         "--no-store", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "exported" in out            # series labelled by file stem
        assert "mix-pointer-stream:lbm" in out  # per-constituent table

    def test_cli_reports_bad_machine_files_in_one_line(self, tmp_path,
                                                       capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"num_cores": "many"}))
        code = cli_main(["run", "--suite", "povray",
                         "--machine-file", str(bad), "--no-store"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "bad.json" in err
