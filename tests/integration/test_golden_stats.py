"""Golden-stats snapshots: the full statistics tree, pinned.

The packed/per-op equivalence tests prove the two engines agree with *each
other*; these snapshots pin what both engines produce, so any semantic
drift introduced by future hot-path or coherence work — a stat that stops
counting, a latency that shifts by one cycle, a changed replacement
decision — is caught immediately and attributed to the exact counter that
moved.

One snapshot per protection mode on a small fixed workload, one multi-core
co-run mix on the private-L2 topology, and one per heterogeneous machine
preset (big.LITTLE and asymmetric protection — these pin the per-core
construction paths, including the mixed-scheme composite memory system).
Refresh intentionally with::

    pytest tests/integration/test_golden_stats.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.common.params import (
    ProtectionMode,
    SystemConfig,
    corun_system_config,
)
from repro.workloads.mixes import get_machine
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 1234
INSTRUCTIONS = 400
WARMUP_FRACTION = 0.25

#: (snapshot name, benchmark, system configuration).
CASES = [
    (mode.value, "mcf", SystemConfig(mode=mode))
    for mode in ProtectionMode
] + [
    ("corun-muontrap", "mix-pointer-stream",
     corun_system_config(ProtectionMode.MUONTRAP, num_cores=2)),
    ("corun-unprotected", "mix-pointer-stream",
     corun_system_config(ProtectionMode.UNPROTECTED, num_cores=2)),
    ("hetero-biglittle-muontrap", "mix-pointer-stream",
     get_machine("biglittle-muontrap")),
    ("hetero-asym-protect", "mix-pointer-stream",
     get_machine("asym-protect")),
]


def _run_case(benchmark: str, config: SystemConfig) -> dict:
    profile = get_profile(benchmark)
    workload = generate_workload(profile, INSTRUCTIONS, seed=SEED)
    system_config = config.with_cores(max(config.num_cores,
                                          profile.num_threads, 1))
    simulator = Simulator(build_system(system_config, seed=SEED))
    result = simulator.run(workload, collect_stats=True,
                           warmup_fraction=WARMUP_FRACTION)
    return {
        "benchmark": result.benchmark,
        "mode": result.mode,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "warmup_cycles": result.warmup_cycles,
        "core_benchmarks": result.core_benchmarks,
        "stats": dict(sorted(result.stats.items())),
    }


def _diff(expected: dict, actual: dict) -> str:
    lines = []
    for key in ("benchmark", "mode", "cycles", "instructions",
                "warmup_cycles", "core_benchmarks"):
        if expected[key] != actual[key]:
            lines.append(f"  {key}: golden={expected[key]!r} "
                         f"actual={actual[key]!r}")
    golden_stats = expected["stats"]
    actual_stats = actual["stats"]
    for key in sorted(set(golden_stats) | set(actual_stats)):
        old = golden_stats.get(key, "<absent>")
        new = actual_stats.get(key, "<absent>")
        if old != new:
            lines.append(f"  stats[{key}]: golden={old} actual={new}")
    return "\n".join(lines)


class TestGoldenStats:
    # (the parametrize name avoids "benchmark", which pytest-benchmark
    # reserves as a fixture when that plugin is installed)
    @pytest.mark.parametrize("name,workload_name,config", CASES,
                             ids=[case[0] for case in CASES])
    def test_stats_match_golden(self, name, workload_name, config,
                                update_golden):
        path = GOLDEN_DIR / f"stats_{name}.json"
        actual = _run_case(workload_name, config)
        if update_golden:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(actual, indent=1, sort_keys=True)
                            + "\n")
            return
        assert path.is_file(), (
            f"golden snapshot {path} missing — generate it with "
            f"`pytest {__file__} --update-golden`")
        expected = json.loads(path.read_text())
        if expected != actual:
            pytest.fail(
                f"simulation drifted from golden snapshot {path.name}; "
                f"if the change is intentional, refresh with "
                f"`pytest tests/integration/test_golden_stats.py "
                f"--update-golden`.\n" + _diff(expected, actual))
