"""Differential suite: registry dispatch ≡ the pre-redesign enum dispatch.

The scheme registry replaced the literal if-chain that used to live in
``repro.sim.hetero.frontend_factory``.  These tests keep a faithful copy
of that pre-redesign chain and prove that, for all seven built-in schemes,
a system dispatched through the registry simulates **bit-identically**
(cycles, instructions, and the full statistics tree) to one dispatched
through the legacy chain — homogeneous and heterogeneous, and regardless
of whether the scheme is named by the deprecated enum or by its registry
name string.

(The heterogeneous presets are additionally pinned end-to-end by the
golden snapshots in ``test_golden_stats.py``, which predate the registry.)
"""

import pytest

from repro.baselines.insecure_l0 import InsecureL0MemorySystem
from repro.baselines.invisispec import InvisiSpecMemorySystem
from repro.baselines.stt import STTMemorySystem
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import ProtectionMode, SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.core.muontrap import MuonTrapMemorySystem
from repro.cpu.core import OutOfOrderCore
from repro.memory.page_table import PageTableManager
from repro.sim.simulator import Simulator
from repro.sim.system import SimulatedSystem, build_system
from repro.workloads.generator import generate_workload
from repro.workloads.mixes import get_machine
from repro.workloads.profiles import get_profile

INSTRUCTIONS = 500
SEED = 1234
WARMUP = 0.25


def legacy_frontend_factory(mode):
    """A faithful copy of the pre-redesign dispatch if-chain."""
    if mode is ProtectionMode.MUONTRAP:
        return MuonTrapMemorySystem
    if mode is ProtectionMode.UNPROTECTED:
        return UnprotectedMemorySystem
    if mode is ProtectionMode.INSECURE_L0:
        return InsecureL0MemorySystem
    if mode in (ProtectionMode.INVISISPEC_SPECTRE,
                ProtectionMode.INVISISPEC_FUTURE):
        def build_invisispec(config, **kwargs):
            return InvisiSpecMemorySystem(
                config,
                future_variant=mode is ProtectionMode.INVISISPEC_FUTURE,
                **kwargs)
        return build_invisispec
    if mode in (ProtectionMode.STT_SPECTRE, ProtectionMode.STT_FUTURE):
        def build_stt(config, **kwargs):
            return STTMemorySystem(
                config, future_variant=mode is ProtectionMode.STT_FUTURE,
                **kwargs)
        return build_stt
    raise ValueError(f"unknown protection mode: {mode!r}")


def legacy_build_system(config: SystemConfig, seed: int) -> SimulatedSystem:
    """The pre-redesign single-scheme construction path, verbatim."""
    stats = StatGroup("system")
    rng = DeterministicRng(seed)
    page_tables = PageTableManager(page_size=config.tlb.page_size)
    memory_system = legacy_frontend_factory(config.mode)(
        config, page_tables=page_tables,
        stats=stats.child("memory_system"), rng=rng)
    cores = [
        OutOfOrderCore(core_id, config, memory_system.frontend(core_id),
                       process_id=0, stats=stats.child(f"core{core_id}"))
        for core_id in range(config.num_cores)
    ]
    return SimulatedSystem(config=config, memory_system=memory_system,
                           cores=cores, stats=stats,
                           page_tables=page_tables)


def run(system, benchmark="mcf"):
    profile = get_profile(benchmark)
    workload = generate_workload(profile, INSTRUCTIONS, seed=SEED)
    return Simulator(system).run(workload, collect_stats=True,
                                 warmup_fraction=WARMUP)


def assert_identical(left, right):
    assert left.cycles == right.cycles
    assert left.instructions == right.instructions
    assert left.warmup_cycles == right.warmup_cycles
    assert left.core_results == right.core_results
    assert left.stats == right.stats


class TestHomogeneousDifferential:
    @pytest.mark.parametrize("mode", list(ProtectionMode),
                             ids=[mode.value for mode in ProtectionMode])
    def test_registry_bit_identical_to_legacy_chain(self, mode):
        config = SystemConfig(mode=mode)
        registry = run(build_system(config, seed=SEED))
        legacy = run(legacy_build_system(config, seed=SEED))
        assert_identical(registry, legacy)

    @pytest.mark.parametrize("mode", list(ProtectionMode),
                             ids=[mode.value for mode in ProtectionMode])
    def test_scheme_name_strings_equal_enum_members(self, mode):
        by_enum = run(build_system(SystemConfig(mode=mode), seed=SEED))
        by_name = run(build_system(SystemConfig(mode=mode.value),
                                   seed=SEED))
        assert_identical(by_enum, by_name)


class TestHeterogeneousDifferential:
    @pytest.mark.parametrize("preset", ["biglittle-asym", "asym-protect"])
    def test_string_named_hetero_machines_equal_enum_named(self, preset):
        config = get_machine(preset)
        # Rebuild the same machine with every per-core mode expressed as a
        # registry name string instead of the enum.
        renamed = config.with_core_configs(
            [core.with_mode(core.scheme) for core in config.core_configs()])
        assert renamed.core_modes == config.core_modes  # normalised back
        left = run(build_system(config, seed=SEED), "mix-pointer-stream")
        right = run(build_system(renamed, seed=SEED), "mix-pointer-stream")
        assert_identical(left, right)

    def test_hetero_composite_uses_registry_frontends(self):
        config = get_machine("asym-protect")
        system = build_system(config, seed=SEED)
        frontends = system.memory_system.scheme_frontends
        assert set(frontends) == {"muontrap", "unprotected"}
        assert isinstance(frontends["muontrap"], MuonTrapMemorySystem)
        assert isinstance(frontends["unprotected"],
                          UnprotectedMemorySystem)
