"""Tests for the DRAM latency model."""

from repro.common.params import MemoryConfig
from repro.memory.main_memory import MainMemory


class TestMainMemory:
    def test_read_returns_configured_latency(self):
        memory = MainMemory(MemoryConfig(access_latency=150))
        assert memory.read(0x1000, now=0) >= 150
        assert memory.total_reads == 1

    def test_bank_conflict_adds_penalty(self):
        memory = MainMemory(MemoryConfig(access_latency=100), num_banks=2,
                            bank_conflict_penalty=25)
        first = memory.read(0x0, now=0)
        # Same bank (line 0 and line 2 map to bank 0 with 2 banks), issued
        # while the first access is still in flight.
        second = memory.read(0x80, now=10)
        assert second == first + 25

    def test_different_banks_do_not_conflict(self):
        memory = MainMemory(MemoryConfig(access_latency=100), num_banks=2,
                            bank_conflict_penalty=25)
        memory.read(0x0, now=0)
        assert memory.read(0x40, now=10) == 100

    def test_writes_are_counted(self):
        memory = MainMemory()
        memory.write(0x2000, now=0)
        memory.write(0x3000, now=0)
        assert memory.total_writes == 2

    def test_no_conflict_after_bank_frees(self):
        memory = MainMemory(MemoryConfig(access_latency=50), num_banks=1,
                            bank_conflict_penalty=30)
        memory.read(0x0, now=0)
        assert memory.read(0x40, now=1000) == 50
