"""Tests for hashed API-key authentication."""

import hashlib

import pytest

from repro.service.auth import API_KEYS_ENV, ApiKeyAuth, hash_key


class TestHashKey:
    def test_is_sha256_hex(self):
        assert hash_key("secret") == hashlib.sha256(b"secret").hexdigest()


class TestParsing:
    def test_plaintext_entries_are_hashed_immediately(self):
        auth = ApiKeyAuth.from_env(raw="alpha,beta")
        assert auth.digests == {hash_key("alpha"), hash_key("beta")}

    def test_prehashed_entries_are_accepted_verbatim(self):
        digest = hash_key("gamma")
        auth = ApiKeyAuth.from_env(raw=f"sha256:{digest}")
        assert auth.digests == {digest}
        assert auth.authorise("gamma")

    def test_whitespace_and_empty_entries_are_ignored(self):
        auth = ApiKeyAuth.from_env(raw=" alpha , , beta ,")
        assert len(auth.digests) == 2

    def test_malformed_digest_entry_is_a_configuration_error(self):
        with pytest.raises(ValueError, match="64-character hex"):
            ApiKeyAuth.from_env(raw="sha256:nothex")

    def test_from_env_reads_the_environment(self, monkeypatch):
        monkeypatch.setenv(API_KEYS_ENV, "envkey")
        auth = ApiKeyAuth.from_env()
        assert auth.authorise("envkey")

    def test_unset_environment_disables_auth(self, monkeypatch):
        monkeypatch.delenv(API_KEYS_ENV, raising=False)
        auth = ApiKeyAuth.from_env()
        assert not auth.enabled


class TestAuthorise:
    def test_accepts_a_configured_key(self):
        auth = ApiKeyAuth.from_keys("good")
        assert auth.authorise("good")

    def test_rejects_wrong_missing_and_empty_keys(self):
        auth = ApiKeyAuth.from_keys("good")
        assert not auth.authorise("bad")
        assert not auth.authorise(None)
        assert not auth.authorise("")

    def test_disabled_auth_authorises_everything(self):
        auth = ApiKeyAuth()
        assert not auth.enabled
        assert auth.authorise(None)
        assert auth.authorise("anything")

    def test_only_digests_live_in_memory(self):
        auth = ApiKeyAuth.from_keys("topsecret")
        assert "topsecret" not in repr(vars(auth))
