"""Tests for the service-facing CLI surface.

``version`` / ``--json`` listing modes share one serialiser with the
HTTP endpoints (asserted against :mod:`repro.service.serialize`
directly), ``store migrate`` moves entries between backends from the
command line, and ``serve`` — run as a real subprocess — drains its
in-flight jobs on SIGTERM and exits 0.
"""

import json
import os
import signal
import subprocess
import sys

from repro.__main__ import main
from repro.harness.store import open_store
from repro.service.serialize import (
    schemes_payload,
    suites_payload,
    version_payload,
)
from tests.harness.test_store import make_result


class TestVersion:
    def test_human_output_names_the_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "repro 1." in out
        assert "default engine" in out

    def test_json_output_is_the_health_payload(self, capsys):
        assert main(["version", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == version_payload()


class TestJsonListings:
    def test_suites_json_matches_the_service_serialiser(self, capsys):
        assert main(["suites", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == suites_payload()

    def test_schemes_json_matches_the_service_serialiser(self, capsys):
        assert main(["schemes", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == schemes_payload()

    def test_machines_json_resolves_back_through_the_facade(self, capsys):
        from repro import api
        assert main(["machines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for entry in payload:
            config = api.resolve_machine(entry["machine"])
            assert config.num_cores == entry["num_cores"]

    def test_text_mode_is_unchanged(self, capsys):
        assert main(["suites"]) == 0
        assert "spec_int" in capsys.readouterr().out


class TestStoreMigrate:
    def test_json_to_sqlite_via_cli(self, tmp_path, capsys):
        source = open_store(tmp_path / "src", backend="json")
        source.put("k1", make_result(cycles=1))
        source.put("k2", make_result(cycles=2))
        assert main(["store", "migrate", str(tmp_path / "src"),
                     str(tmp_path / "dst"), "--dest-backend",
                     "sqlite"]) == 0
        assert "migrated 2 entries" in capsys.readouterr().out
        dest = open_store(tmp_path / "dst")
        assert dest.get("k1") == make_result(cycles=1)
        assert dest.describe().startswith("sqlite:")

    def test_sqlite_to_json_via_cli(self, tmp_path, capsys):
        source = open_store(tmp_path / "src", backend="sqlite")
        source.put("k", make_result())
        assert main(["store", "migrate", str(tmp_path / "src"),
                     str(tmp_path / "dst")]) == 0
        dest = open_store(tmp_path / "dst")
        assert dest.get("k") == make_result()
        assert dest.describe().startswith("json:")

    def test_same_store_is_refused(self, tmp_path, capsys):
        open_store(tmp_path / "s").put("k", make_result())
        assert main(["store", "migrate", str(tmp_path / "s"),
                     str(tmp_path / "s")]) == 2
        assert "same store" in capsys.readouterr().err


class TestStoreBackendFlag:
    def test_clean_respects_the_backend_flag(self, tmp_path, capsys):
        store = open_store(tmp_path / "s", backend="sqlite")
        store.put("k", make_result())
        assert main(["clean", "--store", str(tmp_path / "s"),
                     "--store-backend", "sqlite"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert len(open_store(tmp_path / "s", backend="sqlite")) == 0


def _repo_env(store):
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(repo, "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    env["REPRO_INSTRUCTIONS"] = "600"
    env["REPRO_STORE"] = str(store)
    env.pop("REPRO_API_KEYS", None)
    return env


class TestServeSubprocess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--store-backend", "sqlite"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=_repo_env(tmp_path / "store"), text=True)
        try:
            line = proc.stdout.readline()
            assert "serving on http://" in line
            url = line.split()[2]
            import urllib.request
            body = json.dumps({"schemes": ["muontrap"], "suite": "mcf",
                               "instructions": 600}).encode()
            request = urllib.request.Request(
                f"{url}/v1/compare", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=10) as response:
                job = json.loads(response.read())
            assert job["status"] in ("queued", "running", "done")
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            proc.stdout.close()
        # The drained job's cells made it into the persistent store.
        store = open_store(tmp_path / "store", backend="sqlite")
        assert len(store) > 0
