"""Tests for the deterministic token-bucket rate limiter."""

import pytest

from repro.service.ratelimit import (
    RATE_BURST_ENV,
    RATE_LIMIT_ENV,
    RateLimiter,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_admits_then_denies(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refills_at_the_configured_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = exactly one token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_retry_after_is_exact_with_a_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.retry_after() == 0.0

    def test_tokens_cap_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_invalid_rate_and_burst_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)

    def test_default_burst_is_at_least_one(self):
        bucket = TokenBucket(rate=0.1)
        assert bucket.capacity == 1.0


class TestRateLimiter:
    def test_identities_have_independent_buckets(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.allow("alice") == (True, 0.0)
        admitted, _ = limiter.allow("alice")
        assert not admitted
        assert limiter.allow("bob") == (True, 0.0)

    def test_denial_reports_retry_after(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=1, clock=clock)
        limiter.allow("x")
        admitted, retry_after = limiter.allow("x")
        assert not admitted
        assert retry_after == pytest.approx(0.5)

    def test_from_env_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv(RATE_LIMIT_ENV, raising=False)
        assert RateLimiter.from_env() is None

    def test_from_env_reads_rate_and_burst(self, monkeypatch):
        monkeypatch.setenv(RATE_LIMIT_ENV, "3.5")
        monkeypatch.setenv(RATE_BURST_ENV, "7")
        limiter = RateLimiter.from_env()
        assert limiter.rate == 3.5
        assert limiter.burst == 7
