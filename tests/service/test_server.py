"""End-to-end tests for the simulation service over real HTTP.

Each test spins an in-process :class:`ReproServer` on port 0 and talks
to it through :class:`ServiceClient` — the same stack ``python -m repro
serve`` runs, minus the process boundary.  The headline assertions are
the subsystem's acceptance criteria: a sweep over HTTP returns bytes
identical to serialising the same inline :func:`repro.api.sweep`, and
two clients requesting the same matrix share one job and compute each
cell exactly once against the shared store.
"""

import threading

import pytest

from repro import api
from repro.harness.store import open_store
from repro.service import (
    ApiKeyAuth,
    RateLimiter,
    ReproServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.serialize import (
    canonical_json,
    simulation_payload,
    sweep_payload,
)
from tests.service.test_ratelimit import FakeClock

INSTRUCTIONS = 600


@pytest.fixture
def server(tmp_path):
    store = open_store(tmp_path / "store", backend="sqlite")
    instance = ReproServer(ServiceConfig(port=0, store=store))
    instance.start()
    yield instance
    instance.shutdown(drain=True, timeout=60)


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestReadEndpoints:
    def test_health_reports_the_package(self, client):
        payload = client.health()
        assert payload["package"] == "repro"
        assert payload["store_backends"] == ["json", "sqlite"]

    def test_listings_mirror_the_cli_serialisers(self, client):
        from repro.service.serialize import (
            machines_payload,
            schemes_payload,
            suites_payload,
        )
        assert client.suites() == suites_payload()
        assert client.schemes() == schemes_payload()
        assert client.machines() == machines_payload()

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._get("/v1/nope")
        assert excinfo.value.status == 404


class TestValidation:
    def test_unknown_parameter_is_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.simulate("mcf", benchamrk="typo")
        assert excinfo.value.status == 400
        assert "benchamrk" in excinfo.value.message

    def test_missing_required_parameter_is_rejected(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._post("/v1/sweep", {"values": [1, 2]})
        assert excinfo.value.status == 400
        assert "parameter" in excinfo.value.message

    def test_unknown_workload_is_a_400_not_a_500(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.simulate("no-such-benchmark",
                            instructions=INSTRUCTIONS)
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("sweep-0000000000000000")
        assert excinfo.value.status == 404

    def test_result_of_unfinished_job_is_409(self, server):
        # Submit against a queue whose worker is busy: a second job waits
        # queued, and asking for its result early must 409, not 500.
        block = threading.Event()
        original = server._run_job

        def slow(job):
            block.wait(timeout=30)
            return original(job)

        server.queue._runner = slow
        client = ServiceClient(server.url)
        job = client.submit_compare(["muontrap"], suite="mcf",
                                    instructions=INSTRUCTIONS)
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.job_result_bytes(job["id"])
            assert excinfo.value.status == 409
        finally:
            block.set()
            client.wait(job["id"], timeout=60)


class TestAuth:
    @pytest.fixture
    def server(self, tmp_path):
        config = ServiceConfig(port=0,
                               auth=ApiKeyAuth.from_keys("letmein"))
        instance = ReproServer(config)
        instance.start()
        yield instance
        instance.shutdown(drain=True, timeout=60)

    def test_health_needs_no_key(self, server):
        assert ServiceClient(server.url).health()["package"] == "repro"

    def test_missing_key_is_401(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).suites()
        assert excinfo.value.status == 401

    def test_wrong_key_is_401(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url, api_key="wrong").suites()
        assert excinfo.value.status == 401

    def test_correct_key_is_accepted(self, server):
        client = ServiceClient(server.url, api_key="letmein")
        assert client.suites()

    def test_bearer_token_is_accepted_too(self, server):
        import json as json_module
        import urllib.request
        request = urllib.request.Request(
            f"{server.url}/v1/suites",
            headers={"Authorization": "Bearer letmein"})
        with urllib.request.urlopen(request, timeout=10) as response:
            assert json_module.loads(response.read())


class TestRateLimit:
    def test_work_endpoints_throttle_with_retry_after(self, tmp_path):
        clock = FakeClock()
        config = ServiceConfig(
            port=0, store=open_store(tmp_path / "s", backend="sqlite"),
            limiter=RateLimiter(rate=1.0, burst=1, clock=clock))
        server = ReproServer(config)
        server.start()
        try:
            client = ServiceClient(server.url)
            client.simulate("mcf", instructions=INSTRUCTIONS)
            with pytest.raises(ServiceError) as excinfo:
                client.simulate("mcf", instructions=INSTRUCTIONS)
            assert excinfo.value.status == 429
            # Polling endpoints stay unmetered even while throttled.
            assert client.health()
            assert client.jobs() == []
        finally:
            server.shutdown(drain=True, timeout=60)


class TestByteIdentity:
    def test_simulate_matches_inline_bytes(self, server, client):
        remote = client._request(
            "POST", "/v1/simulate",
            {"workload": "mcf", "scheme": "muontrap",
             "instructions": INSTRUCTIONS})
        inline = api.simulate("mcf", scheme="muontrap",
                              instructions=INSTRUCTIONS)
        assert remote == canonical_json(simulation_payload(inline))

    def test_sweep_over_http_matches_inline_bytes(self, server, client):
        """The headline acceptance criterion."""
        job = client.submit_sweep("core.width", [2, 4], suite="mcf",
                                  instructions=INSTRUCTIONS)
        final = client.wait(job["id"], timeout=120)
        assert final["progress"]["done"] == final["progress"]["total"] > 0
        remote = client.job_result_bytes(job["id"])
        inline = api.sweep("core.width", [2, 4], suite="mcf",
                           instructions=INSTRUCTIONS)
        assert remote == canonical_json(sweep_payload(inline))


class TestExactlyOnce:
    def test_concurrent_identical_sweeps_share_a_job_and_the_store(
            self, server, tmp_path):
        """Two clients, same matrix, one SQLite store: one job id, and
        every cell lands in the store exactly once (an inline rerun of
        the same matrix executes zero cells)."""
        clients = [ServiceClient(server.url) for _ in range(2)]
        submissions = [None, None]

        def submit(index):
            submissions[index] = clients[index].submit_sweep(
                "core.width", [2, 4], suite="mcf",
                instructions=INSTRUCTIONS)

        threads = [threading.Thread(target=submit, args=(index,))
                   for index in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert submissions[0]["id"] == submissions[1]["id"]
        clients[0].wait(submissions[0]["id"], timeout=120)
        first = clients[0].job_result_bytes(submissions[0]["id"])
        second = clients[1].job_result_bytes(submissions[1]["id"])
        assert first == second
        # Every cell is already persisted: replaying the matrix inline
        # against the same store computes nothing.
        replay = api.sweep("core.width", [2, 4], suite="mcf",
                           instructions=INSTRUCTIONS,
                           store=server.config.store)
        stats = replay.comparison.result.stats
        assert stats.executed == 0
        assert stats.store_hits == stats.total > 0


class TestShutdown:
    def test_drained_shutdown_finishes_inflight_jobs(self, tmp_path):
        store = open_store(tmp_path / "store", backend="sqlite")
        server = ReproServer(ServiceConfig(port=0, store=store))
        server.start()
        client = ServiceClient(server.url)
        job = client.submit_compare(["muontrap"], suite="mcf",
                                    instructions=INSTRUCTIONS)
        assert server.shutdown(drain=True, timeout=120)
        finished = server.queue.get(job["id"])
        assert finished.status == "done"
        assert finished.result is not None

    def test_draining_server_rejects_new_submissions(self, tmp_path):
        server = ReproServer(ServiceConfig(port=0))
        server.start()
        client = ServiceClient(server.url)
        server.queue.drain(timeout=30)
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.submit_compare(["muontrap"], suite="mcf",
                                      instructions=INSTRUCTIONS)
            assert excinfo.value.status == 503
        finally:
            server.shutdown(drain=False)
