"""Tests for the async job queue: dedup, lifecycle, drain."""

import threading
import time

import pytest

from repro.service.jobs import DONE, FAILED, JobQueue, job_id_for


def run_to_completion(queue, job, timeout=10.0):
    """Poll until the worker thread finishes the job (or fail loudly)."""
    deadline = time.monotonic() + timeout
    while job.status not in (DONE, FAILED):
        if time.monotonic() > deadline:
            raise AssertionError(f"job stuck in {job.status}")
        time.sleep(0.005)


class TestJobIds:
    def test_content_addressed(self):
        assert job_id_for("sweep", {"a": 1}) == job_id_for("sweep", {"a": 1})
        assert job_id_for("sweep", {"a": 1}) != job_id_for("sweep", {"a": 2})
        assert job_id_for("sweep", {"a": 1}) != job_id_for("compare",
                                                           {"a": 1})

    def test_id_is_prefixed_with_the_kind(self):
        assert job_id_for("sweep", {}).startswith("sweep-")


class TestLifecycle:
    def test_success_carries_the_result(self):
        queue = JobQueue(lambda job: {"answer": job.params["x"] * 2})
        job, created = queue.submit("compare", {"x": 21})
        assert created
        run_to_completion(queue, job)
        assert job.status == DONE
        assert job.result == {"answer": 42}
        assert job.error is None

    def test_failure_carries_the_error(self):
        def runner(job):
            raise ValueError("bad matrix")

        queue = JobQueue(runner)
        job, _ = queue.submit("compare", {})
        run_to_completion(queue, job)
        assert job.status == FAILED
        assert "ValueError: bad matrix" in job.error
        assert job.result is None

    def test_progress_hook_updates_the_status_document(self):
        def runner(job):
            job.update_progress(2, 3)
            return {}

        queue = JobQueue(runner)
        job, _ = queue.submit("sweep", {})
        run_to_completion(queue, job)
        assert job.payload()["progress"] == {"done": 2, "total": 3}

    def test_payload_hides_result_unless_asked(self):
        queue = JobQueue(lambda job: {"big": "payload"})
        job, _ = queue.submit("compare", {})
        run_to_completion(queue, job)
        assert "result" not in job.payload()
        assert job.payload(include_result=True)["result"] \
            == {"big": "payload"}


class TestDedup:
    def test_identical_submissions_share_one_job(self):
        release = threading.Event()

        def runner(job):
            release.wait(timeout=10)
            return {}

        queue = JobQueue(runner)
        first, created_first = queue.submit("sweep", {"m": 1})
        second, created_second = queue.submit("sweep", {"m": 1})
        release.set()
        assert created_first and not created_second
        assert first is second

    def test_completed_jobs_keep_deduplicating(self):
        calls = []
        queue = JobQueue(lambda job: calls.append(1) or {})
        job, _ = queue.submit("sweep", {"m": 1})
        run_to_completion(queue, job)
        again, created = queue.submit("sweep", {"m": 1})
        assert again is job and not created
        assert len(calls) == 1

    def test_failed_jobs_are_replaced_on_resubmit(self):
        attempts = []

        def runner(job):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("transient")
            return {"ok": True}

        queue = JobQueue(runner)
        job, _ = queue.submit("sweep", {"m": 1})
        run_to_completion(queue, job)
        assert job.status == FAILED
        retry, created = queue.submit("sweep", {"m": 1})
        assert created and retry is not job
        assert retry.id == job.id
        run_to_completion(queue, retry)
        assert retry.status == DONE

    def test_different_requests_get_different_jobs(self):
        queue = JobQueue(lambda job: {})
        first, _ = queue.submit("sweep", {"m": 1})
        second, _ = queue.submit("sweep", {"m": 2})
        assert first is not second
        assert first.id != second.id


class TestDrain:
    def test_drain_waits_for_inflight_work(self):
        started = threading.Event()
        release = threading.Event()

        def runner(job):
            started.set()
            release.wait(timeout=10)
            return {"done": True}

        queue = JobQueue(runner)
        job, _ = queue.submit("sweep", {})
        assert started.wait(timeout=5)
        # Not drained while the job holds the worker...
        assert not queue.drain(timeout=0.05)
        release.set()
        assert queue.drain(timeout=10)
        assert job.status == DONE

    def test_draining_queue_rejects_new_jobs(self):
        queue = JobQueue(lambda job: {})
        queue.drain(timeout=10)
        with pytest.raises(RuntimeError, match="draining"):
            queue.submit("sweep", {})

    def test_jobs_listing_preserves_submission_order(self):
        queue = JobQueue(lambda job: {})
        ids = [queue.submit("sweep", {"m": index})[0].id
               for index in range(3)]
        assert [job.id for job in queue.jobs()] == ids
