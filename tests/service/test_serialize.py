"""Tests for the canonical serialisers shared by the CLI and the service."""

import json

from repro import api
from repro.harness.executor import FailedCell
from repro.service.serialize import (
    canonical_json,
    comparison_payload,
    failure_payload,
    machines_payload,
    schemes_payload,
    simulation_payload,
    suites_payload,
    sweep_payload,
    version_payload,
)

INSTRUCTIONS = 600


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) \
            == canonical_json({"a": 2, "b": 1})

    def test_compact_sorted_utf8(self):
        assert canonical_json({"b": [1, 2], "a": "x"}) \
            == b'{"a":"x","b":[1,2]}'

    def test_round_trips_through_json(self):
        payload = {"nested": {"values": [1, 2.5, None, True]}}
        assert json.loads(canonical_json(payload)) == payload


class TestListingPayloads:
    def test_version_payload_names_the_capabilities(self):
        payload = version_payload()
        assert payload["package"] == "repro"
        assert payload["default_engine"] == "vectorized"
        assert isinstance(payload["numpy"], bool)
        assert payload["store_backends"] == ["json", "sqlite"]
        assert payload["schemes"] >= 6
        assert payload["suites"] >= 5

    def test_suites_payload_expands_members(self):
        payload = suites_payload()
        by_name = {entry["name"]: entry["benchmarks"] for entry in payload}
        assert "mcf" in by_name["spec_int"]

    def test_schemes_payload_carries_capabilities(self):
        payload = schemes_payload()
        muontrap = next(entry for entry in payload
                        if entry["name"] == "muontrap")
        assert muontrap["builtin"]
        assert muontrap["capabilities"]["supports_filter_caches"]

    def test_machines_payload_attaches_full_description(self):
        payload = machines_payload()
        assert payload
        for entry in payload:
            assert len(entry["cores"]) == entry["num_cores"]
            # The attached machine dict is the --machine-file schema and
            # must resolve back through the public facade.
            config = api.resolve_machine(entry["machine"])
            assert config.num_cores == entry["num_cores"]

    def test_listing_payloads_are_json_serialisable(self):
        for payload in (version_payload(), suites_payload(),
                        schemes_payload(), machines_payload()):
            canonical_json(payload)


class TestOutcomePayloads:
    def test_failure_payload_excludes_wall_clock(self):
        failure = FailedCell(key="k", benchmark="mcf", label="MuonTrap",
                             seed=42, error="boom", attempts=3,
                             seconds=1.23)
        payload = failure_payload(failure)
        assert "seconds" not in payload
        assert payload["error"] == "boom"

    def test_simulation_payload_is_deterministic(self):
        first = api.simulate("mcf", scheme="muontrap",
                             instructions=INSTRUCTIONS)
        second = api.simulate("mcf", scheme="muontrap",
                              instructions=INSTRUCTIONS)
        assert canonical_json(simulation_payload(first)) \
            == canonical_json(simulation_payload(second))

    def test_comparison_payload_keys_runs_per_cell(self):
        outcome = api.compare(["muontrap"], suite="mcf",
                              instructions=INSTRUCTIONS)
        payload = comparison_payload(outcome)
        from repro.harness.campaign import DEFAULT_SEED
        assert f"mcf|MuonTrap|{DEFAULT_SEED}" in payload["runs"]
        assert payload["baseline_label"] in payload["normalised"] \
            or payload["normalised"]
        canonical_json(payload)  # fully serialisable

    def test_sweep_payload_is_deterministic(self):
        outcomes = [api.sweep("core.width", [2, 4], suite="mcf",
                              instructions=INSTRUCTIONS)
                    for _ in range(2)]
        first, second = (canonical_json(sweep_payload(outcome))
                         for outcome in outcomes)
        assert first == second
